//! Declarative scenarios: run any dataset × backbone × accelerator
//! combination from a config instead of a code change.
//!
//! A [`Scenario`] bundles everything one co-exploration run needs — the
//! task vector (backbone + weight per task), the design specs, the
//! hardware space, the search algorithm and its budget, and the seed —
//! into a value that round-trips through TOML and JSON.  The
//! [`registry`] resolves well-known names (`w1`..`w3` plus mixes beyond
//! the paper's tables) to built-in scenarios, and the `nasaic` CLI binary
//! is a thin front-end over this module.
//!
//! ```
//! use nasaic_core::scenario::Scenario;
//!
//! let toml = r#"
//! name = "mini"
//! seed = 7
//!
//! [[tasks]]
//! name = "classification-cifar10"
//! backbone = "resnet9-cifar10"
//! weight = 1.0
//!
//! [specs]
//! latency_cycles = 4e5
//! energy_nj = 1e9
//! area_um2 = 4e9
//!
//! [search]
//! episodes = 40
//! "#;
//! let scenario = Scenario::from_toml_str(toml).unwrap();
//! assert_eq!(scenario.tasks.len(), 1);
//! assert_eq!(scenario.search.episodes, 40);
//! // Unset fields take the paper defaults, and the value round-trips.
//! assert_eq!(scenario.hardware.sub_accelerators, 2);
//! let reparsed = Scenario::from_toml_str(&scenario.to_toml_string()).unwrap();
//! assert_eq!(reparsed, scenario);
//! ```

pub mod generate;
pub mod registry;
pub mod report;
pub mod value;

use crate::algorithm::{NullObserver, SearchContext, SearchObserver};
use crate::checkpoint::{
    CheckpointSink, NullCheckpointSink, SearchCheckpoint, ShardPartial, ShardPlan,
};
use crate::engine::EvalEngine;
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::log::SearchOutcome;
use crate::search::NasaicConfig;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::{Dataflow, HardwareSpace, ResourceBudget};
use nasaic_cost::CostModel;
use nasaic_nn::backbone::Backbone;
use nasaic_rl::ControllerConfig;
use nasaic_sched::{select_tier, SchedulerPolicy, TierDecision};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

pub use value::{ConfigError, ConfigValue};

/// One task declaration of a scenario: which backbone to search, under
/// which name, with which weight in the combined accuracy (Eq. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task name (free-form; used in logs and controller segment names).
    pub name: String,
    /// Backbone searched for this task.
    pub backbone: Backbone,
    /// Weight `alpha_i` of the task in the combined accuracy, in `(0, 1]`.
    pub weight: f64,
}

impl TaskSpec {
    /// Create a task spec.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not in `(0, 1]` (parsed scenarios report a
    /// [`ConfigError`] instead).
    pub fn new(name: &str, backbone: Backbone, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight <= 1.0,
            "task weight must be in (0, 1]"
        );
        Self {
            name: name.to_string(),
            backbone,
            weight,
        }
    }
}

/// The hardware design space a scenario searches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Number of sub-accelerators on the die.
    pub sub_accelerators: usize,
    /// Total PE budget `NP` shared by the sub-accelerators.
    pub max_pes: usize,
    /// Total NoC bandwidth budget `BW` in GB/s.
    pub max_bandwidth_gbps: usize,
    /// The dataflow templates the controller may assign, in choice order
    /// (the order matters for seeded reproducibility).
    pub dataflows: Vec<Dataflow>,
}

impl HardwareSpec {
    /// The paper's hardware space: `k` sub-accelerators, the full
    /// 4096-PE / 64-GB/s budget, all three dataflow templates.
    pub fn paper(sub_accelerators: usize) -> Self {
        Self {
            sub_accelerators,
            max_pes: 4096,
            max_bandwidth_gbps: 64,
            dataflows: Dataflow::all().to_vec(),
        }
    }

    /// Build the [`HardwareSpace`] this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is structurally invalid (zero sub-accelerators,
    /// empty dataflow list, zero budget); parsed scenarios are validated
    /// before this point.
    pub fn space(&self) -> HardwareSpace {
        HardwareSpace::new(
            ResourceBudget::new(self.max_pes, self.max_bandwidth_gbps),
            self.sub_accelerators,
            self.dataflows.clone(),
        )
    }
}

/// The search algorithm a scenario runs: the NASAIC RL controller or one
/// of the five baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's RL co-exploration loop (default).
    Nasaic,
    /// Joint Monte-Carlo random search.
    MonteCarlo,
    /// Greedy hill climbing over the joint space.
    HillClimb,
    /// Evolutionary co-search on the NASAIC reward.
    Evolutionary,
    /// Successive optimisation: accuracy-only NAS, then an ASIC sweep.
    NasThenAsic,
    /// Successive optimisation: hardware search, then hardware-aware NAS.
    AsicThenHwNas,
}

impl Algorithm {
    /// All algorithms, in a stable order (NASAIC first).
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::Nasaic,
            Algorithm::MonteCarlo,
            Algorithm::HillClimb,
            Algorithm::Evolutionary,
            Algorithm::NasThenAsic,
            Algorithm::AsicThenHwNas,
        ]
    }

    /// The stable machine-readable name, round-tripped by [`FromStr`].
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Nasaic => "nasaic",
            Algorithm::MonteCarlo => "monte-carlo",
            Algorithm::HillClimb => "hill-climb",
            Algorithm::Evolutionary => "evolutionary",
            Algorithm::NasThenAsic => "nas-then-asic",
            Algorithm::AsicThenHwNas => "asic-then-hwnas",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canonical: String = s
            .trim()
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c == '_' { '-' } else { c })
            .collect();
        Algorithm::all()
            .into_iter()
            .find(|a| a.name() == canonical)
            .ok_or_else(|| {
                ConfigError::schema(format!(
                    "unknown algorithm `{s}` (expected one of: {})",
                    Algorithm::all().map(|a| a.name()).join(", ")
                ))
            })
    }
}

/// The search algorithm and its budget.
///
/// The `episodes` / `hardware_trials` pair is the canonical budget unit
/// (the paper's `beta` and `phi`); [`Algorithm::instantiate`] maps it onto
/// every algorithm's own knobs through [`Budget`] so the whole zoo spends
/// a comparable number of evaluations — see the budget table in
/// `docs/scenarios.md`.
///
/// [`Budget`]: crate::algorithm::Budget
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchSpec {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Episodes `beta` (NASAIC) or the per-phase budget of a baseline.
    pub episodes: usize,
    /// Hardware-only steps per episode `phi`.
    pub hardware_trials: usize,
    /// Random hardware samples used to estimate the penalty bounds.
    pub bound_samples: usize,
    /// Penalty scaling `rho` of Eq. 4.
    pub rho: f64,
    /// Replicate one predicted sub-accelerator across the die
    /// (the homogeneous study of Table II).
    pub homogeneous: bool,
    /// Keep the episode's weighted accuracy in hardware-only rewards so
    /// both step kinds share one scale (`false` = literal paper).
    pub accuracy_in_hardware_reward: bool,
    /// Population size of the evolutionary co-search.
    pub population: usize,
    /// Tournament size of the evolutionary parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability of the evolutionary co-search,
    /// in `[0, 1]`.
    pub mutation_rate: f64,
    /// Which HAP solver evaluates hardware candidates: `heuristic` (the
    /// paper's solver, the default), `auto` (tier by instance size),
    /// `beam` or `exact`.
    pub scheduler: SchedulerPolicy,
}

impl SearchSpec {
    /// The paper's search setup: NASAIC with `beta = 500`, `phi = 10`,
    /// `rho = 10` (plus the repo's evolutionary defaults: population 24,
    /// tournament 3, mutation 0.2).
    pub fn paper() -> Self {
        Self {
            algorithm: Algorithm::Nasaic,
            episodes: 500,
            hardware_trials: 10,
            bound_samples: 50,
            rho: 10.0,
            homogeneous: false,
            accuracy_in_hardware_reward: true,
            population: 24,
            tournament: 3,
            mutation_rate: 0.2,
            scheduler: SchedulerPolicy::Heuristic,
        }
    }

    /// The spec's `(episodes, hardware_trials)` pair as a
    /// [`Budget`](crate::algorithm::Budget) — the struct that owns the
    /// per-algorithm evaluation-count mapping.
    pub fn budget(&self) -> crate::algorithm::Budget {
        crate::algorithm::Budget::new(self.episodes, self.hardware_trials)
    }

    /// Total candidate evaluations this budget pays for
    /// (`episodes * (1 + hardware_trials)`).
    pub fn total_evaluations(&self) -> usize {
        self.budget().total_evaluations()
    }
}

/// A fully-specified co-exploration scenario.
///
/// See the module docs for the TOML shape and `docs/scenarios.md` for the
/// field-by-field schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (registry key; `w1`..`w3` canonicalise to the paper
    /// workloads).
    pub name: String,
    /// Human-readable description shown by `nasaic list-scenarios`.
    pub description: String,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// The task vector (at least one task).
    pub tasks: Vec<TaskSpec>,
    /// Design specs: upper bounds on latency, energy and area.
    pub specs: DesignSpecs,
    /// The hardware space.
    pub hardware: HardwareSpec,
    /// The search algorithm and budget.
    pub search: SearchSpec,
}

impl Scenario {
    // -- construction -----------------------------------------------------

    /// Parse a scenario from its TOML form.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ConfigError`] for syntax errors and a
    /// schema-level one for unknown keys, missing fields or out-of-range
    /// values.
    pub fn from_toml_str(input: &str) -> Result<Self, ConfigError> {
        Self::from_value(&value::parse_toml(input)?)
    }

    /// Parse a scenario from its JSON form.
    ///
    /// # Errors
    ///
    /// As [`Scenario::from_toml_str`].
    pub fn from_json_str(input: &str) -> Result<Self, ConfigError> {
        Self::from_value(&value::parse_json(input)?)
    }

    /// Parse a scenario from either format, sniffing JSON by a leading
    /// `{`.
    ///
    /// # Errors
    ///
    /// As [`Scenario::from_toml_str`].
    pub fn from_config_str(input: &str) -> Result<Self, ConfigError> {
        if input.trim_start().starts_with('{') {
            Self::from_json_str(input)
        } else {
            Self::from_toml_str(input)
        }
    }

    /// Load a scenario from a `.toml` or `.json` file (any other extension
    /// is format-sniffed like [`Scenario::from_config_str`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unreadable files and for parse/schema
    /// errors.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::schema(format!("cannot read {}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json_str(&text),
            Some("toml") => Self::from_toml_str(&text),
            _ => Self::from_config_str(&text),
        }
    }

    // -- schema mapping ---------------------------------------------------

    /// Build a scenario from a parsed [`ConfigValue`] table, validating
    /// the schema strictly (unknown keys are errors).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first schema violation.
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        let table = value
            .as_table()
            .ok_or_else(|| ConfigError::schema("scenario config must be a table"))?;
        check_keys(
            table,
            &[
                "name",
                "description",
                "seed",
                "tasks",
                "specs",
                "hardware",
                "search",
            ],
            "scenario",
        )?;

        let name = req_str(value, "name", "scenario")?;
        let description = opt_str(value, "description", "")?;
        let seed = opt_u64(value, "seed", 2020)?;

        let tasks_value = value
            .get("tasks")
            .ok_or_else(|| ConfigError::schema("scenario needs a [[tasks]] list"))?;
        let tasks_list = tasks_value
            .as_array()
            .ok_or_else(|| ConfigError::schema("`tasks` must be an array of tables"))?;
        if tasks_list.is_empty() {
            return Err(ConfigError::schema("scenario needs at least one task"));
        }
        let mut tasks = Vec::with_capacity(tasks_list.len());
        for (i, entry) in tasks_list.iter().enumerate() {
            let ctx = format!("tasks[{i}]");
            let entry_table = entry
                .as_table()
                .ok_or_else(|| ConfigError::schema(format!("{ctx} must be a table")))?;
            check_keys(entry_table, &["name", "backbone", "weight"], &ctx)?;
            let backbone_name = req_str(entry, "backbone", &ctx)?;
            let backbone = Backbone::from_name(&backbone_name).ok_or_else(|| {
                ConfigError::schema(format!(
                    "{ctx}: unknown backbone `{backbone_name}` (expected one of: {})",
                    Backbone::all().map(|b| b.name()).join(", ")
                ))
            })?;
            let task_name = match value_str(entry, "name")? {
                Some(n) => n,
                None => backbone.name().to_string(),
            };
            let weight = req_f64(entry, "weight", &ctx)?;
            if !(weight > 0.0 && weight <= 1.0) {
                return Err(ConfigError::schema(format!(
                    "{ctx}: weight must be in (0, 1], got {weight}"
                )));
            }
            tasks.push(TaskSpec {
                name: task_name,
                backbone,
                weight,
            });
        }

        let specs_value = value
            .get("specs")
            .ok_or_else(|| ConfigError::schema("scenario needs a [specs] table"))?;
        let specs_table = specs_value
            .as_table()
            .ok_or_else(|| ConfigError::schema("`specs` must be a table"))?;
        check_keys(
            specs_table,
            &["latency_cycles", "energy_nj", "area_um2"],
            "specs",
        )?;
        let latency = req_f64(specs_value, "latency_cycles", "specs")?;
        let energy = req_f64(specs_value, "energy_nj", "specs")?;
        let area = req_f64(specs_value, "area_um2", "specs")?;
        for (key, bound) in [
            ("latency_cycles", latency),
            ("energy_nj", energy),
            ("area_um2", area),
        ] {
            if bound <= 0.0 {
                return Err(ConfigError::schema(format!(
                    "specs.{key} must be positive, got {bound}"
                )));
            }
        }
        let specs = DesignSpecs::new(latency, energy, area);

        let hardware = match value.get("hardware") {
            None => HardwareSpec::paper(2),
            Some(hw) => {
                let hw_table = hw
                    .as_table()
                    .ok_or_else(|| ConfigError::schema("`hardware` must be a table"))?;
                check_keys(
                    hw_table,
                    &[
                        "sub_accelerators",
                        "max_pes",
                        "max_bandwidth_gbps",
                        "dataflows",
                    ],
                    "hardware",
                )?;
                let sub_accelerators = opt_usize(hw, "sub_accelerators", 2)?;
                if sub_accelerators == 0 {
                    return Err(ConfigError::schema(
                        "hardware.sub_accelerators must be at least 1",
                    ));
                }
                let max_pes = opt_usize(hw, "max_pes", 4096)?;
                let max_bandwidth_gbps = opt_usize(hw, "max_bandwidth_gbps", 64)?;
                if max_pes == 0 || max_bandwidth_gbps == 0 {
                    return Err(ConfigError::schema(
                        "hardware budget (max_pes, max_bandwidth_gbps) must be positive",
                    ));
                }
                let dataflows = match hw.get("dataflows") {
                    None => Dataflow::all().to_vec(),
                    Some(list) => {
                        let items = list.as_array().ok_or_else(|| {
                            ConfigError::schema("hardware.dataflows must be an array of strings")
                        })?;
                        if items.is_empty() {
                            return Err(ConfigError::schema(
                                "hardware.dataflows must name at least one template",
                            ));
                        }
                        let mut flows = Vec::with_capacity(items.len());
                        for item in items {
                            let text = item.as_str().ok_or_else(|| {
                                ConfigError::schema("hardware.dataflows entries must be strings")
                            })?;
                            flows.push(Dataflow::from_str(text).map_err(|e| {
                                ConfigError::schema(format!("hardware.dataflows: {e}"))
                            })?);
                        }
                        flows
                    }
                };
                HardwareSpec {
                    sub_accelerators,
                    max_pes,
                    max_bandwidth_gbps,
                    dataflows,
                }
            }
        };

        let search = match value.get("search") {
            None => SearchSpec::paper(),
            Some(search_value) => {
                let search_table = search_value
                    .as_table()
                    .ok_or_else(|| ConfigError::schema("`search` must be a table"))?;
                check_keys(
                    search_table,
                    &[
                        "algorithm",
                        "episodes",
                        "hardware_trials",
                        "bound_samples",
                        "rho",
                        "homogeneous",
                        "accuracy_in_hardware_reward",
                        "population",
                        "tournament",
                        "mutation_rate",
                        "scheduler",
                    ],
                    "search",
                )?;
                let defaults = SearchSpec::paper();
                let algorithm = match value_str(search_value, "algorithm")? {
                    None => Algorithm::Nasaic,
                    Some(name) => Algorithm::from_str(&name)?,
                };
                let episodes = opt_usize(search_value, "episodes", defaults.episodes)?;
                if episodes == 0 {
                    return Err(ConfigError::schema("search.episodes must be at least 1"));
                }
                let rho = match search_value.get("rho") {
                    None => defaults.rho,
                    Some(v) => v.as_float().ok_or_else(|| {
                        ConfigError::schema(format!(
                            "search.rho must be a number, got {}",
                            v.kind()
                        ))
                    })?,
                };
                let population = opt_usize(search_value, "population", defaults.population)?;
                // The evolutionary driver needs two parents; a population of
                // 1 would also break the declared-budget arithmetic.
                if population < 2 {
                    return Err(ConfigError::schema("search.population must be at least 2"));
                }
                let tournament = opt_usize(search_value, "tournament", defaults.tournament)?;
                if tournament == 0 {
                    return Err(ConfigError::schema("search.tournament must be at least 1"));
                }
                let mutation_rate = match search_value.get("mutation_rate") {
                    None => defaults.mutation_rate,
                    Some(v) => v.as_float().ok_or_else(|| {
                        ConfigError::schema(format!(
                            "search.mutation_rate must be a number, got {}",
                            v.kind()
                        ))
                    })?,
                };
                if !(0.0..=1.0).contains(&mutation_rate) {
                    return Err(ConfigError::schema(format!(
                        "search.mutation_rate must be in [0, 1], got {mutation_rate}"
                    )));
                }
                let scheduler = match value_str(search_value, "scheduler")? {
                    None => defaults.scheduler,
                    Some(name) => name
                        .parse::<SchedulerPolicy>()
                        .map_err(|e| ConfigError::schema(format!("search.scheduler: {e}")))?,
                };
                SearchSpec {
                    algorithm,
                    episodes,
                    hardware_trials: opt_usize(
                        search_value,
                        "hardware_trials",
                        defaults.hardware_trials,
                    )?,
                    bound_samples: opt_usize(
                        search_value,
                        "bound_samples",
                        defaults.bound_samples,
                    )?,
                    rho,
                    homogeneous: opt_bool(search_value, "homogeneous", false)?,
                    accuracy_in_hardware_reward: opt_bool(
                        search_value,
                        "accuracy_in_hardware_reward",
                        true,
                    )?,
                    population,
                    tournament,
                    mutation_rate,
                    scheduler,
                }
            }
        };

        Ok(Self {
            name,
            description,
            seed,
            tasks,
            specs,
            hardware,
            search,
        })
    }

    /// Serialize the scenario as a [`ConfigValue`] table (the inverse of
    /// [`Scenario::from_value`]; every field is emitted explicitly).
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("name", ConfigValue::Str(self.name.clone()));
        root.insert("description", ConfigValue::Str(self.description.clone()));
        root.insert("seed", ConfigValue::Integer(self.seed as i64));

        let tasks = self
            .tasks
            .iter()
            .map(|task| {
                let mut t = ConfigValue::table();
                t.insert("name", ConfigValue::Str(task.name.clone()));
                t.insert(
                    "backbone",
                    ConfigValue::Str(task.backbone.name().to_string()),
                );
                t.insert("weight", ConfigValue::Float(task.weight));
                t
            })
            .collect();
        root.insert("tasks", ConfigValue::Array(tasks));

        let mut specs = ConfigValue::table();
        specs.insert(
            "latency_cycles",
            ConfigValue::Float(self.specs.latency_cycles),
        );
        specs.insert("energy_nj", ConfigValue::Float(self.specs.energy_nj));
        specs.insert("area_um2", ConfigValue::Float(self.specs.area_um2));
        root.insert("specs", specs);

        let mut hardware = ConfigValue::table();
        hardware.insert(
            "sub_accelerators",
            ConfigValue::Integer(self.hardware.sub_accelerators as i64),
        );
        hardware.insert(
            "max_pes",
            ConfigValue::Integer(self.hardware.max_pes as i64),
        );
        hardware.insert(
            "max_bandwidth_gbps",
            ConfigValue::Integer(self.hardware.max_bandwidth_gbps as i64),
        );
        hardware.insert(
            "dataflows",
            ConfigValue::Array(
                self.hardware
                    .dataflows
                    .iter()
                    .map(|d| ConfigValue::Str(d.abbreviation().to_string()))
                    .collect(),
            ),
        );
        root.insert("hardware", hardware);

        let mut search = ConfigValue::table();
        search.insert(
            "algorithm",
            ConfigValue::Str(self.search.algorithm.name().to_string()),
        );
        search.insert(
            "episodes",
            ConfigValue::Integer(self.search.episodes as i64),
        );
        search.insert(
            "hardware_trials",
            ConfigValue::Integer(self.search.hardware_trials as i64),
        );
        search.insert(
            "bound_samples",
            ConfigValue::Integer(self.search.bound_samples as i64),
        );
        search.insert("rho", ConfigValue::Float(self.search.rho));
        search.insert("homogeneous", ConfigValue::Bool(self.search.homogeneous));
        search.insert(
            "accuracy_in_hardware_reward",
            ConfigValue::Bool(self.search.accuracy_in_hardware_reward),
        );
        search.insert(
            "population",
            ConfigValue::Integer(self.search.population as i64),
        );
        search.insert(
            "tournament",
            ConfigValue::Integer(self.search.tournament as i64),
        );
        search.insert(
            "mutation_rate",
            ConfigValue::Float(self.search.mutation_rate),
        );
        search.insert(
            "scheduler",
            ConfigValue::Str(self.search.scheduler.name().to_string()),
        );
        root.insert("search", search);
        root
    }

    /// The scenario as a TOML document.
    pub fn to_toml_string(&self) -> String {
        value::to_toml(&self.to_value())
    }

    /// The scenario as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        value::to_json(&self.to_value())
    }

    // -- derived run inputs ----------------------------------------------

    /// The workload this scenario declares
    /// (alias of [`Workload::from_scenario`]).
    pub fn workload(&self) -> Workload {
        Workload::from_scenario(self)
    }

    /// The hardware space this scenario searches.
    pub fn hardware_space(&self) -> HardwareSpace {
        self.hardware.space()
    }

    /// The [`NasaicConfig`] equivalent of this scenario's search setup
    /// (controller hyperparameters and accuracy oracle are the defaults,
    /// exactly as the hardcoded `W1`–`W3` paths use them).
    pub fn nasaic_config(&self) -> NasaicConfig {
        NasaicConfig {
            episodes: self.search.episodes,
            hardware_trials: self.search.hardware_trials,
            rho: self.search.rho,
            num_sub_accelerators: self.hardware.sub_accelerators,
            homogeneous: self.search.homogeneous,
            accuracy_in_hardware_reward: self.search.accuracy_in_hardware_reward,
            bound_samples: self.search.bound_samples,
            seed: self.seed,
            controller: ControllerConfig::default(),
            oracle: AccuracyOracle::default(),
        }
    }

    /// A fresh [`EvalEngine`] for this scenario (evaluator over the
    /// declared workload, specs, the default oracle and the scenario's
    /// scheduler policy).
    pub fn engine(&self) -> EvalEngine {
        self.engine_with_config(crate::engine::EngineConfig::default())
    }

    /// [`engine`](Self::engine) with explicit tuning knobs (thread ceiling,
    /// cache bounds) — the daemon path, where a long-lived engine needs
    /// bounded caches and a per-job thread budget.
    pub fn engine_with_config(&self, config: crate::engine::EngineConfig) -> EvalEngine {
        EvalEngine::with_config(
            Evaluator::new(&self.workload(), self.specs, AccuracyOracle::default())
                .with_scheduler(self.search.scheduler),
            config,
        )
    }

    /// Total layer count of the scenario's workload when every task picks
    /// its smallest (resp. largest) architecture — the bounds of the HAP
    /// instances the search will solve.
    pub fn layer_bounds(&self) -> (usize, usize) {
        let mut min_layers = 0;
        let mut max_layers = 0;
        for task in &self.tasks {
            min_layers += task.backbone.smallest_architecture().num_layers();
            max_layers += task.backbone.largest_architecture().num_layers();
        }
        (min_layers, max_layers)
    }

    /// Which scheduler tier this scenario's hardware evaluations run, and
    /// why.  Size-dependent policies (`auto`, the `exact` fallback) are
    /// decided per candidate inside the evaluator; the decision reported
    /// here is taken on the **largest** instance the task vector can
    /// produce, so the reported tier covers every candidate of the search
    /// (smaller candidates may individually get a stronger tier).
    pub fn scheduler_decision(&self) -> TierDecision {
        use nasaic_sched::{SchedulerTier, DEFAULT_BEAM_WIDTH, EXACT_LAYER_LIMIT};
        let (min_layers, max_layers) = self.layer_bounds();
        match self.search.scheduler {
            SchedulerPolicy::Heuristic => TierDecision {
                tier: SchedulerTier::Heuristic,
                width: None,
                total_layers: max_layers,
                reason: "policy heuristic pins the paper's ratio heuristic".to_string(),
            },
            SchedulerPolicy::Beam => TierDecision {
                tier: SchedulerTier::Beam,
                width: Some(DEFAULT_BEAM_WIDTH),
                total_layers: max_layers,
                reason: format!("policy beam pins beam search at width {DEFAULT_BEAM_WIDTH}"),
            },
            SchedulerPolicy::Auto => {
                let mut decision = select_tier(max_layers);
                decision.reason = format!(
                    "policy auto over instances of {min_layers}..{max_layers} layers: {}",
                    decision.reason
                );
                decision
            }
            SchedulerPolicy::Exact => {
                if max_layers <= EXACT_LAYER_LIMIT {
                    TierDecision {
                        tier: SchedulerTier::Exact,
                        width: None,
                        total_layers: max_layers,
                        reason: format!(
                            "policy exact: at most {max_layers} layers within \
                             EXACT_LAYER_LIMIT {EXACT_LAYER_LIMIT}"
                        ),
                    }
                } else {
                    let mut decision = select_tier(max_layers);
                    decision.reason = format!(
                        "policy exact overruled: instances up to {max_layers} layers exceed \
                         EXACT_LAYER_LIMIT {EXACT_LAYER_LIMIT}; falls back to {}",
                        decision.tier
                    );
                    decision
                }
            }
        }
    }

    // -- execution --------------------------------------------------------

    /// Run the scenario's declared algorithm and return the raw search
    /// outcome (see [`report::RunReport`] for the summarised form the CLI
    /// emits).
    pub fn run_outcome(&self) -> SearchOutcome {
        self.run_algorithm_with_engine(self.search.algorithm, &self.engine())
    }

    /// Run a specific algorithm on this scenario through a shared engine
    /// (the `compare` path runs every algorithm over one warm cache).
    ///
    /// Dispatch goes through the [`Algorithm::instantiate`] factory and
    /// the [`SearchAlgorithm`](crate::algorithm::SearchAlgorithm) trait;
    /// the per-algorithm budget mapping lives on
    /// [`Budget`](crate::algorithm::Budget) (full table in
    /// `docs/scenarios.md`).
    ///
    /// # Panics
    ///
    /// As [`Scenario::run_algorithm_observed`].
    pub fn run_algorithm_with_engine(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_algorithm_observed(algorithm, engine, &NullObserver)
    }

    /// [`run_algorithm_with_engine`](Self::run_algorithm_with_engine) with
    /// a [`SearchObserver`] receiving the run's event stream (per-episode
    /// telemetry, incumbents, phase boundaries, the final cache summary).
    /// Observation is passive: the outcome is bit-identical to the
    /// unobserved run.
    ///
    /// # Panics
    ///
    /// Panics when `engine` was built for different design specs, a
    /// different workload, or a non-default cost model.  An engine's
    /// hardware metrics solve the HAP under *its own* latency spec and
    /// cost model, and its accuracy cache is keyed by task position, so
    /// reusing an engine across scenarios that disagree on any of these
    /// would silently evaluate this scenario against the other scenario's
    /// constraints.  Engines may only be shared across runs of the *same*
    /// scenario (which is exactly what the `compare` path does) — build
    /// one with [`Scenario::engine`].
    pub fn run_algorithm_observed(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> SearchOutcome {
        self.run_algorithm_checkpointed(algorithm, engine, observer, None, &NullCheckpointSink)
    }

    /// [`run_algorithm_observed`](Self::run_algorithm_observed) with
    /// checkpoint plumbing: `resume` continues a run from a saved
    /// [`SearchCheckpoint`] and `sink` receives new checkpoints as the run
    /// progresses.  A resumed run continued to the full budget is
    /// bit-identical to the uninterrupted run.
    ///
    /// # Panics
    ///
    /// As [`Scenario::run_algorithm_observed`], plus when `resume` was
    /// written by a different algorithm or seed.
    pub fn run_algorithm_checkpointed(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.check_engine(engine);
        let workload = self.workload();
        let hardware = self.hardware_space();
        let driver = algorithm.instantiate(&self.search, self.seed);
        let ctx = SearchContext::new(
            &workload,
            self.specs,
            &hardware,
            engine,
            self.seed,
            self.search.budget(),
        )
        .with_observer(observer);
        driver.run_checkpointed(&ctx, resume, sink)
    }

    /// The algorithm's shard plan for splitting this scenario's run over
    /// `shards` workers (see
    /// [`SearchAlgorithm::shard_plan`](crate::algorithm::SearchAlgorithm::shard_plan)).
    pub fn algorithm_shard_plan(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        shards: usize,
    ) -> ShardPlan {
        self.check_engine(engine);
        let workload = self.workload();
        let hardware = self.hardware_space();
        let driver = algorithm.instantiate(&self.search, self.seed);
        let ctx = SearchContext::new(
            &workload,
            self.specs,
            &hardware,
            engine,
            self.seed,
            self.search.budget(),
        );
        driver.shard_plan(&ctx, shards)
    }

    /// Run one shard of this scenario's search under `plan`; the returned
    /// [`ShardPartial`] merges with the other shards' partials through
    /// [`merge_algorithm_shards`](Self::merge_algorithm_shards) into the
    /// exact single-process outcome.
    ///
    /// # Panics
    ///
    /// As [`Scenario::run_algorithm_observed`], plus when `plan` names a
    /// different algorithm or `shard_index >= plan.shards`.
    pub fn run_algorithm_shard(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        plan: &ShardPlan,
        shard_index: usize,
    ) -> ShardPartial {
        self.check_engine(engine);
        let workload = self.workload();
        let hardware = self.hardware_space();
        let driver = algorithm.instantiate(&self.search, self.seed);
        let ctx = SearchContext::new(
            &workload,
            self.specs,
            &hardware,
            engine,
            self.seed,
            self.search.budget(),
        )
        .with_observer(observer);
        driver.run_shard(&ctx, plan, shard_index)
    }

    /// Merge the partials of every shard of `plan` into the single-process
    /// [`SearchOutcome`].
    ///
    /// # Panics
    ///
    /// As [`Scenario::run_algorithm_observed`], plus when partials are
    /// missing, duplicated, or from a different plan.
    pub fn merge_algorithm_shards(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        plan: &ShardPlan,
        partials: Vec<ShardPartial>,
    ) -> SearchOutcome {
        self.check_engine(engine);
        let workload = self.workload();
        let hardware = self.hardware_space();
        let driver = algorithm.instantiate(&self.search, self.seed);
        let ctx = SearchContext::new(
            &workload,
            self.specs,
            &hardware,
            engine,
            self.seed,
            self.search.budget(),
        );
        driver.merge_shards(&ctx, plan, partials)
    }

    /// The engine/scenario compatibility gate shared by every run entry
    /// point (see [`run_algorithm_observed`](Self::run_algorithm_observed)
    /// for why each dimension is checked).
    fn check_engine(&self, engine: &EvalEngine) {
        let workload = self.workload();
        assert!(
            engine.evaluator().specs() == &self.specs,
            "engine/scenario mismatch: the engine was built for specs {:?} but scenario `{}` \
             declares {:?}; hardware mappings are solved under the engine's latency spec, so a \
             shared engine must come from this scenario's `Scenario::engine()`",
            engine.evaluator().specs(),
            self.name,
            self.specs,
        );
        assert!(
            engine.evaluator().workload() == &workload,
            "engine/scenario mismatch: the engine was built for workload `{}` but scenario `{}` \
             declares workload `{}`; accuracy caches are keyed by task position, so a shared \
             engine must come from this scenario's `Scenario::engine()`",
            engine.evaluator().workload().name,
            self.name,
            workload.name,
        );
        assert!(
            engine.evaluator().scheduler() == self.search.scheduler,
            "engine/scenario mismatch: the engine's evaluator solves hardware mappings with the \
             `{}` scheduler but scenario `{}` declares `{}`; the hardware cache does not key on \
             the scheduler policy, so a shared engine must come from this scenario's \
             `Scenario::engine()`",
            engine.evaluator().scheduler(),
            self.name,
            self.search.scheduler,
        );
        assert!(
            engine.evaluator().cost_model() == &CostModel::paper_calibrated(),
            "engine/scenario mismatch: the engine's evaluator carries a non-default cost model; \
             scenario engines always use the paper-calibrated model and the hardware cache does \
             not key on the cost model, so a shared engine must come from this scenario's \
             `Scenario::engine()`",
        );
    }

    /// A one-line summary for listings.
    pub fn summary(&self) -> String {
        let tasks: Vec<&str> = self.tasks.iter().map(|t| t.backbone.name()).collect();
        format!(
            "{}: {} task(s) [{}], {} on {} sub-accel, {} episodes, seed {}",
            self.name,
            self.tasks.len(),
            tasks.join(", "),
            self.search.algorithm,
            self.hardware.sub_accelerators,
            self.search.episodes,
            self.seed
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

// -- schema helpers ---------------------------------------------------------

fn check_keys(
    entries: &[(String, ConfigValue)],
    allowed: &[&str],
    ctx: &str,
) -> Result<(), ConfigError> {
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(ConfigError::schema(format!(
                "unknown key `{key}` in {ctx} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn value_str(value: &ConfigValue, key: &str) -> Result<Option<String>, ConfigError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            ConfigError::schema(format!("`{key}` must be a string, got {}", v.kind()))
        }),
    }
}

fn req_str(value: &ConfigValue, key: &str, ctx: &str) -> Result<String, ConfigError> {
    value_str(value, key)?
        .ok_or_else(|| ConfigError::schema(format!("{ctx} needs a `{key}` string")))
}

fn opt_str(value: &ConfigValue, key: &str, default: &str) -> Result<String, ConfigError> {
    Ok(value_str(value, key)?.unwrap_or_else(|| default.to_string()))
}

fn req_f64(value: &ConfigValue, key: &str, ctx: &str) -> Result<f64, ConfigError> {
    match value.get(key) {
        None => Err(ConfigError::schema(format!("{ctx} needs a `{key}` number"))),
        Some(v) => v.as_float().ok_or_else(|| {
            ConfigError::schema(format!("{ctx}.{key} must be a number, got {}", v.kind()))
        }),
    }
}

/// Describe an offending value in an error: the value itself when it is a
/// (wrong-range) integer, its kind otherwise.
fn describe(v: &ConfigValue) -> String {
    match v.as_integer() {
        Some(i) => i.to_string(),
        None => v.kind().to_string(),
    }
}

fn opt_u64(value: &ConfigValue, key: &str, default: u64) -> Result<u64, ConfigError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => match v.as_integer() {
            Some(i) if i >= 0 => Ok(i as u64),
            _ => Err(ConfigError::schema(format!(
                "`{key}` must be a non-negative integer, got {}",
                describe(v)
            ))),
        },
    }
}

fn opt_usize(value: &ConfigValue, key: &str, default: usize) -> Result<usize, ConfigError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => match v.as_integer() {
            Some(i) if i >= 0 => Ok(i as usize),
            _ => Err(ConfigError::schema(format!(
                "`{key}` must be a non-negative integer, got {}",
                describe(v)
            ))),
        },
    }
}

fn opt_bool(value: &ConfigValue, key: &str, default: bool) -> Result<bool, ConfigError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            ConfigError::schema(format!("`{key}` must be a boolean, got {}", v.kind()))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_toml() -> &'static str {
        r#"
name = "mini"

[[tasks]]
backbone = "resnet9-cifar10"
weight = 1.0

[specs]
latency_cycles = 4e5
energy_nj = 1e9
area_um2 = 4e9
"#
    }

    #[test]
    fn minimal_scenario_fills_paper_defaults() {
        let scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        assert_eq!(scenario.seed, 2020);
        assert_eq!(scenario.search, SearchSpec::paper());
        assert_eq!(scenario.hardware, HardwareSpec::paper(2));
        // An omitted task name defaults to the backbone name.
        assert_eq!(scenario.tasks[0].name, "resnet9-cifar10");
    }

    #[test]
    fn toml_and_json_round_trip() {
        let scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        assert_eq!(
            Scenario::from_toml_str(&scenario.to_toml_string()).unwrap(),
            scenario
        );
        assert_eq!(
            Scenario::from_json_str(&scenario.to_json_string()).unwrap(),
            scenario
        );
        // Auto-detection picks JSON by the leading brace.
        assert_eq!(
            Scenario::from_config_str(&scenario.to_json_string()).unwrap(),
            scenario
        );
    }

    #[test]
    fn unknown_keys_and_bad_values_are_schema_errors() {
        let err =
            Scenario::from_toml_str(&format!("{}\ntypo_key = 1\n", minimal_toml())).unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");

        let bad_backbone = minimal_toml().replace("resnet9-cifar10", "vgg16");
        let err = Scenario::from_toml_str(&bad_backbone).unwrap_err();
        assert!(err.message.contains("unknown backbone"), "{err}");

        let bad_weight = minimal_toml().replace("weight = 1.0", "weight = 1.5");
        let err = Scenario::from_toml_str(&bad_weight).unwrap_err();
        assert!(err.message.contains("weight"), "{err}");

        let err = Scenario::from_toml_str("name = \"empty\"\n").unwrap_err();
        assert!(err.message.contains("tasks"), "{err}");

        // A negative integer is reported by value, not as "got integer".
        let err = Scenario::from_toml_str(&format!("seed = -5\n{}", minimal_toml())).unwrap_err();
        assert!(err.message.contains("got -5"), "{err}");

        // The evolutionary driver needs two parents, and population = 1
        // would break the declared-budget arithmetic.
        let err =
            Scenario::from_toml_str(&format!("{}\n[search]\npopulation = 1\n", minimal_toml()))
                .unwrap_err();
        assert!(err.message.contains("population"), "{err}");

        let err = Scenario::from_toml_str(&format!(
            "{}\n[search]\nmutation_rate = 1.5\n",
            minimal_toml()
        ))
        .unwrap_err();
        assert!(err.message.contains("mutation_rate"), "{err}");
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algorithm in Algorithm::all() {
            assert_eq!(Algorithm::from_str(algorithm.name()).unwrap(), algorithm);
        }
        assert_eq!(
            Algorithm::from_str("NAS_THEN_ASIC").unwrap(),
            Algorithm::NasThenAsic
        );
        assert!(Algorithm::from_str("simulated-annealing").is_err());
    }

    #[test]
    fn nasaic_config_mirrors_search_spec() {
        let mut scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        scenario.seed = 17;
        scenario.search.episodes = 40;
        scenario.search.hardware_trials = 4;
        scenario.search.bound_samples = 10;
        let config = scenario.nasaic_config();
        assert_eq!(config, NasaicConfig::fast_demo(17));
    }

    #[test]
    fn dataflow_subset_parses_in_order() {
        let toml = format!(
            "{}\n[hardware]\ndataflows = [\"dla\", \"shi\"]\n",
            minimal_toml()
        );
        let scenario = Scenario::from_toml_str(&toml).unwrap();
        assert_eq!(
            scenario.hardware.dataflows,
            vec![Dataflow::Nvdla, Dataflow::Shidiannao]
        );
    }

    #[test]
    #[should_panic(expected = "engine/scenario mismatch")]
    fn engine_with_different_latency_spec_is_rejected() {
        let mut scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        scenario.search.episodes = 1;
        scenario.search.hardware_trials = 1;
        scenario.search.bound_samples = 2;
        let foreign = {
            let mut other = scenario.clone();
            other.specs.latency_cycles *= 2.0;
            other.engine()
        };
        // A shared engine must carry this scenario's specs: its hardware
        // cache solves the HAP under the *engine's* latency constraint.
        scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &foreign);
    }

    #[test]
    #[should_panic(expected = "engine/scenario mismatch")]
    fn engine_with_foreign_cost_model_is_rejected() {
        let mut scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        scenario.search.episodes = 1;
        scenario.search.hardware_trials = 1;
        scenario.search.bound_samples = 2;
        let foreign = {
            let mut config = nasaic_cost::CostConfig::paper_calibrated();
            config.mac_energy_nj *= 2.0;
            EvalEngine::new(
                Evaluator::new(
                    &scenario.workload(),
                    scenario.specs,
                    AccuracyOracle::default(),
                )
                .with_cost_model(CostModel::new(config)),
            )
        };
        scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &foreign);
    }

    #[test]
    #[should_panic(expected = "engine/scenario mismatch")]
    fn engine_with_different_workload_is_rejected() {
        let mut scenario = Scenario::from_toml_str(minimal_toml()).unwrap();
        scenario.search.episodes = 1;
        scenario.search.hardware_trials = 1;
        scenario.search.bound_samples = 2;
        let foreign = {
            let mut other = scenario.clone();
            other.tasks.push(other.tasks[0].clone());
            other.engine()
        };
        scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &foreign);
    }
}
