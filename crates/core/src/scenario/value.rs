//! The self-describing configuration value scenarios are parsed from and
//! serialized to.
//!
//! The build environment is offline (see `vendor/README.md`), so the
//! vendored `serde` is a marker-trait stand-in without a data model.  This
//! module supplies the small piece that scenario configs actually need: a
//! [`ConfigValue`] tree plus parsers and emitters for a TOML subset and for
//! JSON.  The TOML subset covers exactly what the scenario schema uses —
//! bare keys, basic strings, integers, floats, booleans, inline arrays,
//! `[table]` headers and `[[array-of-tables]]` headers — and rejects
//! everything else with a line-numbered error instead of guessing.

use std::fmt;

/// A parsed configuration value (the common data model of the TOML and
/// JSON frontends).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list of values.
    Array(Vec<ConfigValue>),
    /// An insertion-ordered table (TOML table / JSON object).
    Table(Vec<(String, ConfigValue)>),
}

/// A parse or schema error, with the 1-based input line where available
/// (`line == 0` means "no specific line", e.g. a missing key).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// 1-based line of the offending input, or 0 when not line-specific.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ConfigError {
    /// An error tied to an input line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// An error with no specific line (schema-level problems).
    pub fn schema(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

impl ConfigValue {
    /// An empty table.
    pub fn table() -> Self {
        ConfigValue::Table(Vec::new())
    }

    /// Look a key up in a table value (returns `None` for non-tables).
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        match self {
            ConfigValue::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert (or replace) a key in a table value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table.
    pub fn insert(&mut self, key: &str, value: ConfigValue) {
        let ConfigValue::Table(entries) = self else {
            panic!("insert on a non-table config value");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Remove a key from a table value, returning its value if present
    /// (no-op `None` for non-tables and missing keys).
    pub fn remove(&mut self, key: &str) -> Option<ConfigValue> {
        let ConfigValue::Table(entries) = self else {
            return None;
        };
        let index = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(index).1)
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfigValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            ConfigValue::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as a float (integers widen losslessly for the
    /// magnitudes scenario configs use).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ConfigValue::Float(x) => Some(*x),
            ConfigValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array content, if this is an array.
    pub fn as_array(&self) -> Option<&[ConfigValue]> {
        match self {
            ConfigValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The table entries, if this is a table.
    pub fn as_table(&self) -> Option<&[(String, ConfigValue)]> {
        match self {
            ConfigValue::Table(entries) => Some(entries),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigValue::Bool(_) => "boolean",
            ConfigValue::Integer(_) => "integer",
            ConfigValue::Float(_) => "float",
            ConfigValue::Str(_) => "string",
            ConfigValue::Array(_) => "array",
            ConfigValue::Table(_) => "table",
        }
    }
}

// ---------------------------------------------------------------------------
// TOML-subset parsing
// ---------------------------------------------------------------------------

/// Parse a TOML-subset document into a [`ConfigValue::Table`].
pub fn parse_toml(input: &str) -> Result<ConfigValue, ConfigError> {
    let mut root = ConfigValue::table();
    // Path of the table the next `key = value` lines land in; `None` means
    // the root table.
    let mut cursor: Vec<PathStep> = Vec::new();
    // Plain `[header]` paths already declared — real TOML rejects
    // re-opening a table, and silently merging would hide config mistakes.
    let mut declared_tables: std::collections::HashSet<String> = std::collections::HashSet::new();

    let lines: Vec<&str> = input.lines().collect();
    let mut index = 0;
    while index < lines.len() {
        let line_no = index + 1;
        let line = strip_comment(lines[index]).trim();
        index += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            cursor = parse_header_path(header, line_no)?;
            let last = cursor.len() - 1;
            cursor[last].array_element = true;
            // Materialise the new array element immediately so empty
            // `[[x]]` sections still round-trip.
            navigate(&mut root, &cursor, line_no, true)?;
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            cursor = parse_header_path(header, line_no)?;
            let joined: Vec<&str> = cursor.iter().map(|s| s.key.as_str()).collect();
            if !declared_tables.insert(joined.join(".")) {
                return Err(ConfigError::at(
                    line_no,
                    format!("table `[{header}]` is declared twice"),
                ));
            }
            navigate(&mut root, &cursor, line_no, true)?;
        } else if let Some((key, value_start)) = line.split_once('=') {
            let key = parse_key(key.trim(), line_no)?;
            // Standard TOML allows arrays to span lines; keep consuming
            // until every `[` opened outside a string is closed.
            let mut value_text = value_start.trim().to_string();
            while open_brackets(&value_text) > 0 && index < lines.len() {
                value_text.push(' ');
                value_text.push_str(strip_comment(lines[index]).trim());
                index += 1;
            }
            let value = parse_toml_value(&value_text, line_no)?;
            let table = navigate(&mut root, &cursor, line_no, false)?;
            if table.get(&key).is_some() {
                return Err(ConfigError::at(line_no, format!("duplicate key `{key}`")));
            }
            table.insert(&key, value);
        } else {
            return Err(ConfigError::at(
                line_no,
                format!("expected `[table]`, `[[array]]` or `key = value`, got `{line}`"),
            ));
        }
    }
    Ok(root)
}

/// Number of `[` brackets opened but not yet closed outside of strings
/// (saturating at 0, so stray `]`s just fail in the value parser).
fn open_brackets(text: &str) -> usize {
    let mut depth: usize = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    depth
}

/// One step of a table header path: a key name plus whether the step is an
/// array-of-tables element (only ever true for the last step).
#[derive(Debug, Clone)]
struct PathStep {
    key: String,
    array_element: bool,
}

fn parse_header_path(header: &str, line: usize) -> Result<Vec<PathStep>, ConfigError> {
    let mut steps = Vec::new();
    for part in header.split('.') {
        steps.push(PathStep {
            key: parse_key(part.trim(), line)?,
            array_element: false,
        });
    }
    Ok(steps)
}

fn parse_key(key: &str, line: usize) -> Result<String, ConfigError> {
    if key.is_empty() {
        return Err(ConfigError::at(line, "empty key"));
    }
    if !key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(ConfigError::at(
            line,
            format!("invalid key `{key}` (bare keys only: A-Z a-z 0-9 _ -)"),
        ));
    }
    Ok(key.to_string())
}

/// Walk (and create) the table at `path`.  When `entering` is true and the
/// last step is an array element, a fresh table is appended to the array at
/// that key; otherwise the existing element/table is returned.
fn navigate<'a>(
    root: &'a mut ConfigValue,
    path: &[PathStep],
    line: usize,
    entering: bool,
) -> Result<&'a mut ConfigValue, ConfigError> {
    let mut current = root;
    for (depth, step) in path.iter().enumerate() {
        let last = depth == path.len() - 1;
        let ConfigValue::Table(entries) = current else {
            return Err(ConfigError::at(
                line,
                format!("`{}` is not a table", step.key),
            ));
        };
        let missing = !entries.iter().any(|(k, _)| k == &step.key);
        if missing {
            let fresh = if step.array_element {
                ConfigValue::Array(vec![ConfigValue::table()])
            } else {
                ConfigValue::table()
            };
            entries.push((step.key.clone(), fresh));
        }
        let value = entries
            .iter_mut()
            .find(|(k, _)| k == &step.key)
            .map(|(_, v)| v)
            .expect("just ensured the key exists");
        current = match value {
            ConfigValue::Array(items) => {
                if last && entering && !step.array_element {
                    return Err(ConfigError::at(
                        line,
                        format!(
                            "`{0}` is an array of tables; append to it with [[{0}]], not [{0}]",
                            step.key
                        ),
                    ));
                }
                if step.array_element && last && entering && !missing {
                    items.push(ConfigValue::table());
                }
                items.last_mut().ok_or_else(|| {
                    ConfigError::at(line, format!("`{}` is an empty array", step.key))
                })?
            }
            ConfigValue::Table(_) => {
                if step.array_element {
                    return Err(ConfigError::at(
                        line,
                        format!("`{}` is a table, not an array of tables", step.key),
                    ));
                }
                value
            }
            other => {
                return Err(ConfigError::at(
                    line,
                    format!("`{}` is a {}, not a table", step.key, other.kind()),
                ));
            }
        };
    }
    Ok(current)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a basic string starts a comment.
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_toml_value(text: &str, line: usize) -> Result<ConfigValue, ConfigError> {
    let mut cursor = Cursor::new(text, line);
    let value = cursor.parse_value(ValueSyntax::Toml)?;
    cursor.skip_whitespace();
    if !cursor.at_end() {
        return Err(ConfigError::at(
            line,
            format!("trailing characters after value: `{}`", cursor.rest()),
        ));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

/// Parse a JSON document into a [`ConfigValue`].
pub fn parse_json(input: &str) -> Result<ConfigValue, ConfigError> {
    let mut cursor = Cursor::new(input, 1);
    cursor.skip_whitespace();
    let value = cursor.parse_value(ValueSyntax::Json)?;
    cursor.skip_whitespace();
    if !cursor.at_end() {
        return Err(ConfigError::at(
            cursor.line,
            format!("trailing characters after document: `{}`", cursor.rest()),
        ));
    }
    Ok(value)
}

/// Which surface syntax a [`Cursor`] is parsing values of.  The two differ
/// only in the details this parser cares about: JSON has `{...}` objects
/// and `null`, the TOML subset has neither (tables come from headers).
#[derive(Clone, Copy, PartialEq)]
enum ValueSyntax {
    Toml,
    Json,
}

/// A character cursor over an input slice, tracking the current line for
/// error messages.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Cursor {
    fn new(input: &str, start_line: usize) -> Self {
        Self {
            chars: input.chars().collect(),
            pos: 0,
            line: start_line,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn rest(&self) -> String {
        self.chars[self.pos..].iter().take(24).collect()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), ConfigError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            other => Err(ConfigError::at(
                self.line,
                format!("expected `{expected}`, got `{}`", fmt_char(other)),
            )),
        }
    }

    fn parse_value(&mut self, syntax: ValueSyntax) -> Result<ConfigValue, ConfigError> {
        self.skip_whitespace();
        match self.peek() {
            Some('"') => Ok(ConfigValue::Str(self.parse_string()?)),
            Some('[') => self.parse_array(syntax),
            Some('{') if syntax == ValueSyntax::Json => self.parse_object(),
            Some(c) if c == 't' || c == 'f' || c == 'n' => self.parse_keyword(syntax),
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => self.parse_number(),
            other => Err(ConfigError::at(
                self.line,
                format!("expected a value, got `{}`", fmt_char(other)),
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, ConfigError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(ConfigError::at(self.line, "unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('/') => out.push('/'),
                    other => {
                        return Err(ConfigError::at(
                            self.line,
                            format!("unsupported escape `\\{}`", fmt_char(other)),
                        ))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self, syntax: ValueSyntax) -> Result<ConfigValue, ConfigError> {
        self.expect('[')?;
        let mut items = Vec::new();
        loop {
            self.skip_whitespace();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(ConfigValue::Array(items));
            }
            items.push(self.parse_value(syntax)?);
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                other => {
                    return Err(ConfigError::at(
                        self.line,
                        format!("expected `,` or `]` in array, got `{}`", fmt_char(other)),
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<ConfigValue, ConfigError> {
        self.expect('{')?;
        let mut entries: Vec<(String, ConfigValue)> = Vec::new();
        loop {
            self.skip_whitespace();
            if self.peek() == Some('}') {
                self.bump();
                return Ok(ConfigValue::Table(entries));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(':')?;
            let value = self.parse_value(ValueSyntax::Json)?;
            if entries.iter().any(|(k, _)| k == &key) {
                return Err(ConfigError::at(self.line, format!("duplicate key `{key}`")));
            }
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {}
                other => {
                    return Err(ConfigError::at(
                        self.line,
                        format!("expected `,` or `}}` in object, got `{}`", fmt_char(other)),
                    ))
                }
            }
        }
    }

    fn parse_keyword(&mut self, syntax: ValueSyntax) -> Result<ConfigValue, ConfigError> {
        let mut word = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
            word.push(self.bump().expect("peeked"));
        }
        match (word.as_str(), syntax) {
            ("true", _) => Ok(ConfigValue::Bool(true)),
            ("false", _) => Ok(ConfigValue::Bool(false)),
            ("null", ValueSyntax::Json) => Err(ConfigError::at(
                self.line,
                "`null` has no scenario meaning; omit the key instead",
            )),
            _ => Err(ConfigError::at(
                self.line,
                format!("unknown keyword `{word}`"),
            )),
        }
    }

    fn parse_number(&mut self) -> Result<ConfigValue, ConfigError> {
        let mut text = String::new();
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit()
                || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_')
        ) {
            text.push(self.bump().expect("peeked"));
        }
        let normalised = text.replace('_', "");
        let value = if normalised.contains(['.', 'e', 'E']) {
            normalised.parse::<f64>().ok().map(ConfigValue::Float)
        } else {
            normalised.parse::<i64>().ok().map(ConfigValue::Integer)
        };
        value.ok_or_else(|| ConfigError::at(self.line, format!("invalid number `{text}`")))
    }
}

fn fmt_char(c: Option<char>) -> String {
    match c {
        Some(c) => c.to_string(),
        None => "end of input".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Serialize a table value as a TOML-subset document.
///
/// Scalar and array entries come first, then `[table]` sections, then
/// `[[array-of-tables]]` sections, so the emitted document parses back
/// with [`parse_toml`] into an equal value.
///
/// # Panics
///
/// Panics if `value` is not a table (only tables are TOML documents).
pub fn to_toml(value: &ConfigValue) -> String {
    let ConfigValue::Table(_) = value else {
        panic!("only table values serialize as TOML documents");
    };
    let mut out = String::new();
    emit_toml_table(value, "", &mut out);
    out
}

fn emit_toml_table(table: &ConfigValue, path: &str, out: &mut String) {
    let entries = table.as_table().expect("emit_toml_table takes tables");
    // Pass 1: scalars and scalar arrays, which belong to the current header.
    for (key, value) in entries {
        match value {
            ConfigValue::Table(_) => {}
            ConfigValue::Array(items) if items.iter().any(|i| i.as_table().is_some()) => {}
            _ => {
                out.push_str(key);
                out.push_str(" = ");
                emit_toml_inline(value, out);
                out.push('\n');
            }
        }
    }
    // Pass 2: sub-tables and arrays of tables.
    for (key, value) in entries {
        let child_path = if path.is_empty() {
            key.clone()
        } else {
            format!("{path}.{key}")
        };
        match value {
            ConfigValue::Table(_) => {
                out.push_str(&format!("\n[{child_path}]\n"));
                emit_toml_table(value, &child_path, out);
            }
            ConfigValue::Array(items) if items.iter().any(|i| i.as_table().is_some()) => {
                for item in items {
                    out.push_str(&format!("\n[[{child_path}]]\n"));
                    emit_toml_table(item, &child_path, out);
                }
            }
            _ => {}
        }
    }
}

fn emit_toml_inline(value: &ConfigValue, out: &mut String) {
    match value {
        ConfigValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ConfigValue::Integer(i) => out.push_str(&i.to_string()),
        ConfigValue::Float(x) => out.push_str(&format_float(*x)),
        ConfigValue::Str(s) => emit_string(s, out),
        ConfigValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_toml_inline(item, out);
            }
            out.push(']');
        }
        ConfigValue::Table(_) => {
            unreachable!("tables are emitted as [sections], not inline")
        }
    }
}

/// Serialize a value as pretty-printed JSON.
pub fn to_json(value: &ConfigValue) -> String {
    let mut out = String::new();
    emit_json(value, 0, &mut out);
    out
}

/// Serialize a value as single-line JSON (no newlines, minimal spacing) —
/// the JSON-lines form the search trace observer emits.  Parses back with
/// [`parse_json`] into the same value.
pub fn to_json_compact(value: &ConfigValue) -> String {
    let mut out = String::new();
    emit_json_compact(value, &mut out);
    out
}

fn emit_json_compact(value: &ConfigValue, out: &mut String) {
    match value {
        ConfigValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ConfigValue::Integer(i) => out.push_str(&i.to_string()),
        ConfigValue::Float(x) => out.push_str(&format_float(*x)),
        ConfigValue::Str(s) => emit_string(s, out),
        ConfigValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json_compact(item, out);
            }
            out.push(']');
        }
        ConfigValue::Table(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(key, out);
                out.push(':');
                emit_json_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn emit_json(value: &ConfigValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        ConfigValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ConfigValue::Integer(i) => out.push_str(&i.to_string()),
        ConfigValue::Float(x) => out.push_str(&format_float(*x)),
        ConfigValue::Str(s) => emit_string(s, out),
        ConfigValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                emit_json(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        ConfigValue::Table(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(&pad_inner);
                emit_string(key, out);
                out.push_str(": ");
                emit_json(item, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float so it parses back as a float (Rust's `Debug` for `f64`
/// is the shortest representation that round-trips and always carries a
/// `.` or an exponent).
fn format_float(x: f64) -> String {
    format!("{x:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays_of_tables() {
        let doc = r#"
# a scenario-shaped document
name = "demo"
seed = 2020
rho = 10.0

[specs]
latency_cycles = 8e5

[[tasks]]
name = "a"
weight = 0.5

[[tasks]]
name = "b"
weight = 0.5
"#;
        let value = parse_toml(doc).unwrap();
        assert_eq!(value.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(value.get("seed").unwrap().as_integer(), Some(2020));
        assert_eq!(value.get("rho").unwrap().as_float(), Some(10.0));
        assert_eq!(
            value
                .get("specs")
                .unwrap()
                .get("latency_cycles")
                .unwrap()
                .as_float(),
            Some(8.0e5)
        );
        let tasks = value.get("tasks").unwrap().as_array().unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[1].get("name").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn parses_inline_arrays_and_comments_inside_strings() {
        let doc = "dataflows = [\"shi\", \"dla\"] # trailing comment\nnote = \"# not a comment\"\n";
        let value = parse_toml(doc).unwrap();
        let flows = value.get("dataflows").unwrap().as_array().unwrap();
        assert_eq!(flows[0].as_str(), Some("shi"));
        assert_eq!(value.get("note").unwrap().as_str(), Some("# not a comment"));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = parse_toml("name = \"x\"\nnot a line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_toml("a = 1\na = 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        let err = parse_toml("a.b = 1\n").unwrap_err();
        assert!(err.message.contains("invalid key"));
    }

    #[test]
    fn toml_round_trips_through_emitter() {
        let doc = "name = \"demo\"\nseed = 7\n\n[specs]\narea_um2 = 4000000000.0\n\n[[tasks]]\nname = \"t\"\nweight = 1.0\n";
        let value = parse_toml(doc).unwrap();
        let emitted = to_toml(&value);
        assert_eq!(parse_toml(&emitted).unwrap(), value);
    }

    #[test]
    fn json_round_trips_through_emitter() {
        let value =
            parse_toml("name = \"demo\"\nflag = true\n\n[[tasks]]\nname = \"t\"\nweight = 0.25\n")
                .unwrap();
        let json = to_json(&value);
        assert_eq!(parse_json(&json).unwrap(), value);
    }

    #[test]
    fn compact_json_is_one_line_and_round_trips() {
        let value =
            parse_toml("name = \"demo\"\nflag = true\n\n[[tasks]]\nname = \"t\"\nweight = 0.25\n")
                .unwrap();
        let compact = to_json_compact(&value);
        assert!(!compact.contains('\n'), "{compact}");
        assert!(!compact.contains("  "), "{compact}");
        assert_eq!(parse_json(&compact).unwrap(), value);
        // Empty containers stay valid.
        assert_eq!(to_json_compact(&ConfigValue::table()), "{}");
        assert_eq!(to_json_compact(&ConfigValue::Array(Vec::new())), "[]");
    }

    #[test]
    fn json_parser_handles_nested_documents() {
        let value = parse_json(r#"{"a": [1, 2.5, {"b": "x"}], "c": false}"#).unwrap();
        let items = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_integer(), Some(1));
        assert_eq!(items[1].as_float(), Some(2.5));
        assert_eq!(items[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn json_parser_rejects_null_and_garbage() {
        assert!(parse_json(r#"{"a": null}"#).is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }

    #[test]
    fn floats_emit_reparseably() {
        for x in [0.5, 2.0e9, 10.0, 1.0e-3, 123456.75] {
            let text = format_float(x);
            assert_eq!(text.parse::<f64>().unwrap(), x, "{text}");
            assert!(
                text.contains('.') || text.contains('e'),
                "`{text}` would reparse as an integer"
            );
        }
    }

    #[test]
    fn empty_array_of_tables_section_materialises() {
        let value = parse_toml("[[tasks]]\n").unwrap();
        assert_eq!(value.get("tasks").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn multiline_arrays_parse_like_real_toml() {
        let doc = "dataflows = [\n  \"shi\",  # comment inside\n  \"dla\",\n]\nnext = 1\n";
        let value = parse_toml(doc).unwrap();
        let flows = value.get("dataflows").unwrap().as_array().unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[1].as_str(), Some("dla"));
        assert_eq!(value.get("next").unwrap().as_integer(), Some(1));
        // An array left open at end of input still errors loudly.
        assert!(parse_toml("dataflows = [\n  \"shi\",\n").is_err());
    }

    #[test]
    fn duplicate_table_headers_are_rejected_like_real_toml() {
        let err = parse_toml("[specs]\na = 1\n\n[specs]\nb = 2\n").unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
        assert_eq!(err.line, 4);
    }

    #[test]
    fn plain_header_cannot_reopen_an_array_of_tables() {
        let err = parse_toml("[[tasks]]\na = 1\n\n[tasks]\nb = 2\n").unwrap_err();
        assert!(err.message.contains("[[tasks]]"), "{err}");
        // Sub-tables of the last array element are still reachable.
        let value = parse_toml("[[tasks]]\n[tasks.extra]\nb = 2\n").unwrap();
        let tasks = value.get("tasks").unwrap().as_array().unwrap();
        assert_eq!(
            tasks[0]
                .get("extra")
                .unwrap()
                .get("b")
                .unwrap()
                .as_integer(),
            Some(2)
        );
    }
}
