//! The built-in scenario registry: the paper's three workloads plus
//! mixed-task scenarios beyond its tables, resolvable by name.
//!
//! ```
//! use nasaic_core::scenario::registry;
//!
//! // Paper scenarios and the beyond-paper mixes are both built in.
//! assert!(registry::names().contains(&"w1"));
//! assert!(registry::names().contains(&"quad-mix"));
//! let w1 = registry::get("w1").unwrap();
//! assert_eq!(w1.tasks.len(), 2);
//! ```

use super::{ConfigError, HardwareSpec, Scenario, SearchSpec, TaskSpec};
use crate::spec::{DesignSpecs, WorkloadId};
use nasaic_accel::Dataflow;
use nasaic_nn::backbone::Backbone;
use std::path::Path;

/// Default seed of the built-in scenarios (the repo-wide experiment seed).
pub const DEFAULT_SEED: u64 = 2020;

/// Names of every built-in scenario, in listing order.
pub fn names() -> Vec<&'static str> {
    vec![
        "w1",
        "w2",
        "w3",
        "quad-mix",
        "area-constrained",
        "edge-single",
        "dla-homogeneous",
    ]
}

/// Every built-in scenario, in listing order.
pub fn all() -> Vec<Scenario> {
    names()
        .into_iter()
        .map(|name| get(name).expect("listed names are built in"))
        .collect()
}

/// Look a built-in scenario up by name (case-insensitive).
pub fn get(name: &str) -> Option<Scenario> {
    match name.trim().to_ascii_lowercase().as_str() {
        "w1" => Some(paper_scenario(WorkloadId::W1)),
        "w2" => Some(paper_scenario(WorkloadId::W2)),
        "w3" => Some(paper_scenario(WorkloadId::W3)),
        "quad-mix" => Some(quad_mix()),
        "area-constrained" => Some(area_constrained()),
        "edge-single" => Some(edge_single()),
        "dla-homogeneous" => Some(dla_homogeneous()),
        _ => None,
    }
}

/// Resolve a scenario reference: a built-in name first, then a config file
/// path (`.toml` / `.json`).
///
/// # Errors
///
/// Returns a [`ConfigError`] when the reference is neither a known name
/// nor a readable, valid config file.
pub fn resolve(reference: &str) -> Result<Scenario, ConfigError> {
    if let Some(scenario) = get(reference) {
        return Ok(scenario);
    }
    let path = Path::new(reference);
    if path.exists() {
        return Scenario::load(path);
    }
    Err(ConfigError::schema(format!(
        "`{reference}` is neither a built-in scenario ({}) nor an existing config file",
        names().join(", ")
    )))
}

/// The paper workload `id` as a scenario (Table I / Table II setup:
/// paper specs, two sub-accelerators, full budget, NASAIC at `beta = 500`).
fn paper_scenario(id: WorkloadId) -> Scenario {
    let (name, description, tasks) = match id {
        WorkloadId::W1 => (
            "w1",
            "Paper W1: CIFAR-10 classification + Nuclei segmentation, equal weights (Table I)",
            vec![
                TaskSpec::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
                TaskSpec::new("segmentation-nuclei", Backbone::UNetNuclei, 0.5),
            ],
        ),
        WorkloadId::W2 => (
            "w2",
            "Paper W2: CIFAR-10 + STL-10 classification, equal weights (Table I)",
            vec![
                TaskSpec::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
                TaskSpec::new("classification-stl10", Backbone::ResNet9Stl10, 0.5),
            ],
        ),
        WorkloadId::W3 => (
            "w3",
            "Paper W3: two CIFAR-10 classification tasks, equal weights (Table II)",
            vec![
                TaskSpec::new("classification-cifar10-a", Backbone::ResNet9Cifar10, 0.5),
                TaskSpec::new("classification-cifar10-b", Backbone::ResNet9Cifar10, 0.5),
            ],
        ),
    };
    Scenario {
        name: name.to_string(),
        description: description.to_string(),
        seed: DEFAULT_SEED,
        tasks,
        specs: DesignSpecs::for_workload(id),
        hardware: HardwareSpec::paper(2),
        search: SearchSpec::paper(),
    }
}

/// Beyond the paper: a four-task heterogeneous mix (two classification
/// datasets, one segmentation dataset, one auxiliary classifier) on three
/// sub-accelerators under proportionally relaxed specs.
fn quad_mix() -> Scenario {
    Scenario {
        name: "quad-mix".to_string(),
        description: "Beyond-paper: 4-task heterogeneous mix (CIFAR-10 + STL-10 + Nuclei + \
                      auxiliary CIFAR-10) on 3 sub-accelerators"
            .to_string(),
        seed: DEFAULT_SEED,
        tasks: vec![
            TaskSpec::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.3),
            TaskSpec::new("classification-stl10", Backbone::ResNet9Stl10, 0.3),
            TaskSpec::new("segmentation-nuclei", Backbone::UNetNuclei, 0.2),
            TaskSpec::new("classification-cifar10-aux", Backbone::ResNet9Cifar10, 0.2),
        ],
        specs: DesignSpecs::new(1.8e6, 6.0e9, 6.0e9),
        hardware: HardwareSpec::paper(3),
        search: SearchSpec::paper(),
    }
}

/// Beyond the paper: the W1 task mix under a halved area spec — the axis
/// the paper's Table II varies for W3, applied to the mixed-task workload.
fn area_constrained() -> Scenario {
    Scenario {
        name: "area-constrained".to_string(),
        description: "Beyond-paper: W1 task mix with the area spec halved to 2e9 um^2".to_string(),
        seed: DEFAULT_SEED,
        tasks: vec![
            TaskSpec::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
            TaskSpec::new("segmentation-nuclei", Backbone::UNetNuclei, 0.5),
        ],
        specs: DesignSpecs::new(8.0e5, 2.0e9, 2.0e9),
        hardware: HardwareSpec::paper(2),
        search: SearchSpec::paper(),
    }
}

/// Beyond the paper: a single-task, single-sub-accelerator edge deployment
/// with half the PE / bandwidth budget.
fn edge_single() -> Scenario {
    Scenario {
        name: "edge-single".to_string(),
        description: "Beyond-paper: single CIFAR-10 task on one sub-accelerator with a \
                      halved 2048-PE / 32-GB/s budget"
            .to_string(),
        seed: DEFAULT_SEED,
        tasks: vec![TaskSpec::new(
            "classification-cifar10",
            Backbone::ResNet9Cifar10,
            1.0,
        )],
        specs: DesignSpecs::new(4.0e5, 1.0e9, 2.0e9),
        hardware: HardwareSpec {
            sub_accelerators: 1,
            max_pes: 2048,
            max_bandwidth_gbps: 32,
            dataflows: Dataflow::all().to_vec(),
        },
        search: SearchSpec::paper(),
    }
}

/// Beyond the paper: the W2 task mix on a homogeneous NVDLA-only die —
/// Table II's homogeneous study transplanted to a multi-dataset workload.
fn dla_homogeneous() -> Scenario {
    Scenario {
        name: "dla-homogeneous".to_string(),
        description: "Beyond-paper: W2 task mix on two identical NVDLA-style sub-accelerators \
                      (homogeneous controller mode)"
            .to_string(),
        seed: DEFAULT_SEED,
        tasks: vec![
            TaskSpec::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
            TaskSpec::new("classification-stl10", Backbone::ResNet9Stl10, 0.5),
        ],
        specs: DesignSpecs::for_workload(WorkloadId::W2),
        hardware: HardwareSpec {
            dataflows: vec![Dataflow::Nvdla],
            ..HardwareSpec::paper(2)
        },
        search: SearchSpec {
            homogeneous: true,
            ..SearchSpec::paper()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn every_builtin_is_resolvable_and_valid() {
        for name in names() {
            let scenario = get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(scenario.name, name);
            assert!(!scenario.description.is_empty(), "{name}");
            // The derived run inputs must construct without panicking.
            let workload = scenario.workload();
            assert_eq!(workload.num_tasks(), scenario.tasks.len());
            let hardware = scenario.hardware_space();
            assert_eq!(
                hardware.num_sub_accelerators(),
                scenario.hardware.sub_accelerators
            );
            // Controller segments exist for every task and sub-accelerator.
            let segments = workload.controller_segments(&hardware);
            assert_eq!(
                segments.len(),
                scenario.tasks.len() + scenario.hardware.sub_accelerators
            );
        }
    }

    #[test]
    fn paper_scenarios_match_hardcoded_workloads() {
        assert_eq!(get("w1").unwrap().workload(), Workload::w1());
        assert_eq!(get("w2").unwrap().workload(), Workload::w2());
        assert_eq!(get("w3").unwrap().workload(), Workload::w3());
        assert_eq!(
            get("W2").unwrap().specs,
            DesignSpecs::for_workload(WorkloadId::W2)
        );
    }

    #[test]
    fn at_least_three_beyond_paper_scenarios_ship() {
        let beyond: Vec<_> = names()
            .into_iter()
            .filter(|n| !matches!(*n, "w1" | "w2" | "w3"))
            .collect();
        assert!(beyond.len() >= 3, "{beyond:?}");
    }

    #[test]
    fn resolve_prefers_names_and_falls_back_to_paths() {
        assert_eq!(resolve("w3").unwrap().name, "w3");
        let err = resolve("no-such-scenario").unwrap_err();
        assert!(err.message.contains("neither"), "{err}");

        let dir = std::env::temp_dir().join("nasaic-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.toml");
        let mut custom = get("edge-single").unwrap();
        custom.name = "custom-edge".to_string();
        std::fs::write(&path, custom.to_toml_string()).unwrap();
        let loaded = resolve(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, custom);
    }

    #[test]
    fn homogeneous_and_restricted_dataflow_mixes_are_represented() {
        let dla = get("dla-homogeneous").unwrap();
        assert!(dla.search.homogeneous);
        assert_eq!(dla.hardware.dataflows, vec![Dataflow::Nvdla]);
        let quad = get("quad-mix").unwrap();
        assert_eq!(quad.tasks.len(), 4);
        let total: f64 = quad.tasks.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
