//! Seeded scenario generator: parameterized, deterministic, and
//! feasibility-diagnosed.
//!
//! A [`GeneratorSpec`] describes a *family* of scenarios — how many
//! networks, which backbones to mix, how many total layers the nominal
//! workload should have, which accelerator pool to search, and how tight
//! the design specs should be — and [`GeneratorSpec::generate`] turns it
//! into one concrete [`Scenario`] plus the nominal architectures it was
//! sized against.  Every generated scenario:
//!
//! * round-trips bit-identically through the strict TOML/JSON schema
//!   (checked at generation time);
//! * is either **feasible** (a probe solve meets the emitted specs) or
//!   **diagnosed** with a structured [`InfeasibilityReason`] — never a
//!   panic;
//! * is reproducible: the same spec produces the same scenario, bit for
//!   bit, on every run and thread count.
//!
//! Layer-count targeting is exact, not best-effort: the achievable layer
//! counts of every backbone's search space are enumerated
//! ([`achievable_layer_counts`]) and a subset-sum table decides whether
//! the requested `layer_range` is reachable at all — an unreachable range
//! is a [`GenerateError::UnreachableLayerRange`] naming the closest
//! achievable total, not a silently off-target workload.
//!
//! For property tests, [`shrink_to_minimal`] walks a failing spec down a
//! deterministic shrink lattice (the vendored `proptest` stand-in does
//! not shrink) until no strictly-simpler candidate still fails.
//!
//! ```
//! use nasaic_core::scenario::generate::GeneratorSpec;
//!
//! let spec = GeneratorSpec::sized(39, 2, 7);
//! let generated = spec.generate().unwrap();
//! assert!(generated.feasibility.is_feasible());
//! // `sized` targets from below: the total never exceeds the request.
//! assert!(generated.total_layers >= 34 && generated.total_layers <= 39);
//! ```

use crate::scenario::{HardwareSpec, Scenario, SearchSpec, TaskSpec};
use crate::spec::DesignSpecs;
use nasaic_accel::{Accelerator, SubAccelerator};
use nasaic_cost::{CostModel, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_nn::layer::Architecture;
use nasaic_sched::{select_tier, solve_tiered, HapProblem, SchedulerPolicy, SchedulerTier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Safety margin applied to the probe's achieved energy and area when
/// deriving the emitted specs (at tightness 1 the specs sit 25% above
/// what the probe achieved, so the search has headroom).
pub const SPEC_MARGIN: f64 = 1.25;

/// Latency constraint of the *relaxed* probe solve that discovers what
/// the workload can achieve before any spec is imposed.
const RELAXED_LATENCY: f64 = 1.0e18;

/// Fallback specs emitted when the workload is unmappable and no probe
/// solve can run (the scenario must still be schema-valid).
const FALLBACK_SPEC: f64 = 1.0e9;

/// A parameterized, seeded recipe for one generated [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSpec {
    /// RNG seed: drives hyperparameter sampling and the generated
    /// scenario's own `seed` field.
    pub seed: u64,
    /// Inclusive bounds on the nominal workload's **total** layer count.
    pub layer_range: (usize, usize),
    /// Number of networks (tasks) in the workload.
    pub network_count: usize,
    /// Backbones the tasks cycle through (task `i` uses entry
    /// `i % len`).
    pub backbone_mix: Vec<Backbone>,
    /// The accelerator pool: sub-accelerator count, resource budget and
    /// dataflow templates of the emitted scenario's hardware space.
    pub accel_pool: HardwareSpec,
    /// Spec tightness: the emitted latency spec is the relaxed probe's
    /// makespan divided by this factor (1.0 = comfortably feasible,
    /// values past [`SPEC_MARGIN`] also exhaust the energy/area
    /// headroom).  Must be finite and positive.
    pub constraint_tightness: f64,
}

impl Default for GeneratorSpec {
    fn default() -> Self {
        Self {
            seed: 2020,
            layer_range: (9, 39),
            network_count: 2,
            backbone_mix: Backbone::all().to_vec(),
            accel_pool: HardwareSpec::paper(2),
            constraint_tightness: 1.0,
        }
    }
}

/// Why a [`GeneratorSpec`] cannot produce any scenario at all (contrast
/// with [`InfeasibilityReason`], which diagnoses a *successfully
/// generated* scenario whose specs cannot be met).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GenerateError {
    /// `network_count` is zero.
    NoNetworks,
    /// `backbone_mix` is empty.
    EmptyBackboneMix,
    /// `layer_range` is empty or starts at zero.
    EmptyLayerRange {
        /// Requested lower bound.
        lo: usize,
        /// Requested upper bound.
        hi: usize,
    },
    /// No combination of per-task architectures hits a total inside
    /// `layer_range`.
    UnreachableLayerRange {
        /// Requested lower bound.
        lo: usize,
        /// Requested upper bound.
        hi: usize,
        /// Smallest total the task vector can produce.
        min_total: usize,
        /// Largest total the task vector can produce.
        max_total: usize,
        /// The achievable total closest to the requested range, when one
        /// exists.
        closest: Option<usize>,
    },
    /// `constraint_tightness` is not a finite positive number.
    InvalidTightness {
        /// The offending value.
        value: f64,
    },
    /// The accelerator pool is structurally invalid (zero
    /// sub-accelerators, empty dataflow list, or a budget too small to
    /// give every sub-accelerator at least one PE and 1 GB/s).
    InvalidAccelPool {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NoNetworks => f.write_str("network_count must be at least 1"),
            GenerateError::EmptyBackboneMix => {
                f.write_str("backbone_mix must name at least one backbone")
            }
            GenerateError::EmptyLayerRange { lo, hi } => {
                write!(f, "layer_range ({lo}, {hi}) is empty; need 1 <= lo <= hi")
            }
            GenerateError::UnreachableLayerRange {
                lo,
                hi,
                min_total,
                max_total,
                closest,
            } => {
                write!(
                    f,
                    "no achievable total layer count in {lo}..={hi} \
                     (task vector spans {min_total}..={max_total}"
                )?;
                match closest {
                    Some(c) => write!(f, "; closest achievable total is {c})"),
                    None => f.write_str(")"),
                }
            }
            GenerateError::InvalidTightness { value } => {
                write!(
                    f,
                    "constraint_tightness must be a finite positive number, got {value}"
                )
            }
            GenerateError::InvalidAccelPool { reason } => {
                write!(f, "invalid accelerator pool: {reason}")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// A structured diagnosis of why a generated scenario's specs cannot be
/// met by its own nominal workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InfeasibilityReason {
    /// Some layer has no sub-accelerator that can execute it at all.
    UnmappableLayer {
        /// Network (task) containing the layer.
        network: String,
        /// Name of the unmappable layer.
        layer: String,
    },
    /// No schedule meeting the emitted latency spec was found by the
    /// probe solver.
    LatencyConstraintUnsatisfiable {
        /// The emitted latency spec in cycles.
        latency_spec: f64,
        /// An admissible lower bound on any schedule's makespan.
        makespan_lower_bound: f64,
    },
    /// The probe's minimum energy exceeds the emitted energy spec.
    EnergyBudgetExceeded {
        /// Energy the probe solution needs, in nJ.
        achieved_nj: f64,
        /// The emitted energy spec in nJ.
        energy_spec_nj: f64,
    },
    /// The probe accelerator's area exceeds the emitted area spec.
    AreaBudgetExceeded {
        /// Area of the probe accelerator, in um^2.
        achieved_um2: f64,
        /// The emitted area spec in um^2.
        area_spec_um2: f64,
    },
}

impl fmt::Display for InfeasibilityReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasibilityReason::UnmappableLayer { network, layer } => {
                write!(f, "layer {layer} of {network} has no feasible mapping")
            }
            InfeasibilityReason::LatencyConstraintUnsatisfiable {
                latency_spec,
                makespan_lower_bound,
            } => write!(
                f,
                "no schedule meets the latency spec {latency_spec:.0} cycles \
                 (workload makespan lower bound: {makespan_lower_bound:.0})"
            ),
            InfeasibilityReason::EnergyBudgetExceeded {
                achieved_nj,
                energy_spec_nj,
            } => write!(
                f,
                "probe needs {achieved_nj:.0} nJ but the energy spec is {energy_spec_nj:.0} nJ"
            ),
            InfeasibilityReason::AreaBudgetExceeded {
                achieved_um2,
                area_spec_um2,
            } => write!(
                f,
                "probe accelerator occupies {achieved_um2:.0} um^2 but the area \
                 spec is {area_spec_um2:.0} um^2"
            ),
        }
    }
}

/// Outcome of the generation-time feasibility probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Feasibility {
    /// A probe solve of the nominal workload meets every emitted spec.
    Feasible {
        /// Energy of the probe solution, in nJ.
        energy_nj: f64,
        /// Makespan of the probe solution, in cycles.
        makespan_cycles: f64,
    },
    /// The emitted specs cannot be met; the reason says why.
    Diagnosed(InfeasibilityReason),
}

impl Feasibility {
    /// `true` for [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible { .. })
    }
}

impl fmt::Display for Feasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feasibility::Feasible {
                energy_nj,
                makespan_cycles,
            } => write!(
                f,
                "feasible: probe solution at {energy_nj:.0} nJ, makespan \
                 {makespan_cycles:.0} cycles"
            ),
            Feasibility::Diagnosed(reason) => write!(f, "infeasible: {reason}"),
        }
    }
}

/// A generated scenario with the evidence of how it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedScenario {
    /// The spec this scenario was generated from.
    pub spec: GeneratorSpec,
    /// The schema-valid, round-trip-checked scenario.
    pub scenario: Scenario,
    /// The nominal architecture of every task, in task order (the
    /// concrete networks the probe and the scale ladder evaluate).
    pub architectures: Vec<Architecture>,
    /// Total layer count of the nominal workload (always inside the
    /// spec's `layer_range`).
    pub total_layers: usize,
    /// The scheduler tier the probe solve ran under (exact / beam /
    /// heuristic by instance size).
    pub probe_tier: SchedulerTier,
    /// Feasible, or a structured diagnosis.
    pub feasibility: Feasibility,
}

impl GeneratedScenario {
    /// The nominal workload as a HAP problem under the emitted latency
    /// spec — the exact instance the feasibility probe solved.
    pub fn hap_problem(&self) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let accelerator = probe_accelerator(&self.spec.accel_pool);
        let costs = WorkloadCosts::build(&model, &self.architectures, &accelerator);
        HapProblem::new(costs, self.scenario.specs.latency_cycles)
    }
}

impl GeneratorSpec {
    /// A spec sized to produce at most `total_layers` nominal layers on
    /// `sub_accelerators` sub-accelerators — the constructor the scale
    /// ladder uses.  Allows a 5-layer slack *below* the target so every
    /// rung is reachable by some backbone combination while never
    /// exceeding the requested count (the ladder's tier boundaries sit
    /// exactly on rung sizes); the task count is the smallest one that
    /// makes the range reachable.
    pub fn sized(total_layers: usize, sub_accelerators: usize, seed: u64) -> Self {
        let mut spec = Self {
            seed,
            layer_range: (total_layers.saturating_sub(5).max(1), total_layers.max(1)),
            network_count: 1,
            backbone_mix: Backbone::all().to_vec(),
            accel_pool: HardwareSpec::paper(sub_accelerators),
            constraint_tightness: 1.0,
        };
        spec.fit_network_count();
        spec
    }

    /// Re-derive `network_count` as the smallest task count that makes
    /// `layer_range` reachable with this spec's backbone mix.  Leaves
    /// the count unchanged when no count works — [`GeneratorSpec::validate`]
    /// then reports the unreachable range.
    pub fn fit_network_count(&mut self) {
        let mut candidate = self.clone();
        let fits = (1..=self.layer_range.1.max(1)).find(|&n| {
            candidate.network_count = n;
            candidate.pick_total_layers().is_ok()
        });
        if let Some(n) = fits {
            self.network_count = n;
        }
    }

    /// Validate the spec without generating.
    ///
    /// # Errors
    ///
    /// Returns the first [`GenerateError`] the spec violates; reachability
    /// of `layer_range` is checked exactly (subset-sum over the per-task
    /// achievable layer counts).
    pub fn validate(&self) -> Result<(), GenerateError> {
        if self.network_count == 0 {
            return Err(GenerateError::NoNetworks);
        }
        if self.backbone_mix.is_empty() {
            return Err(GenerateError::EmptyBackboneMix);
        }
        let (lo, hi) = self.layer_range;
        if lo == 0 || hi < lo {
            return Err(GenerateError::EmptyLayerRange { lo, hi });
        }
        if !(self.constraint_tightness.is_finite() && self.constraint_tightness > 0.0) {
            return Err(GenerateError::InvalidTightness {
                value: self.constraint_tightness,
            });
        }
        let pool = &self.accel_pool;
        if pool.sub_accelerators == 0 {
            return Err(GenerateError::InvalidAccelPool {
                reason: "zero sub-accelerators".to_string(),
            });
        }
        if pool.dataflows.is_empty() {
            return Err(GenerateError::InvalidAccelPool {
                reason: "empty dataflow list".to_string(),
            });
        }
        if pool.max_pes < pool.sub_accelerators || pool.max_bandwidth_gbps < pool.sub_accelerators {
            return Err(GenerateError::InvalidAccelPool {
                reason: format!(
                    "budget ({} PEs, {} GB/s) cannot give each of the {} \
                     sub-accelerators at least 1 PE and 1 GB/s",
                    pool.max_pes, pool.max_bandwidth_gbps, pool.sub_accelerators
                ),
            });
        }
        self.pick_total_layers()?;
        Ok(())
    }

    /// The backbone of each task, cycling through `backbone_mix`.
    fn task_backbones(&self) -> Vec<Backbone> {
        (0..self.network_count)
            .map(|i| self.backbone_mix[i % self.backbone_mix.len()])
            .collect()
    }

    /// Choose the total layer count: the achievable total inside
    /// `layer_range` closest to the range midpoint (ties break low).
    fn pick_total_layers(&self) -> Result<usize, GenerateError> {
        let (lo, hi) = self.layer_range;
        let counts: Vec<Vec<usize>> = self
            .task_backbones()
            .iter()
            .map(|b| achievable_layer_counts(*b))
            .collect();
        let reach = reachable_sums(&counts);
        let last = reach.last().expect("reach has network_count + 1 stages");
        let mid = lo + (hi - lo) / 2;
        let distance = |total: usize| total.abs_diff(mid);
        let in_range = (lo..=hi.min(last.len().saturating_sub(1)))
            .filter(|&t| last[t])
            .min_by_key(|&t| (distance(t), t));
        match in_range {
            Some(total) => Ok(total),
            None => {
                let achievable: Vec<usize> = (0..last.len())
                    .filter(|&t| last[t])
                    .filter(|&t| t > 0)
                    .collect();
                Err(GenerateError::UnreachableLayerRange {
                    lo,
                    hi,
                    min_total: achievable.first().copied().unwrap_or(0),
                    max_total: achievable.last().copied().unwrap_or(0),
                    closest: achievable.iter().copied().min_by_key(|&t| (distance(t), t)),
                })
            }
        }
    }

    /// Generate the scenario this spec describes.
    ///
    /// # Errors
    ///
    /// Returns a [`GenerateError`] for structurally impossible specs.  A
    /// spec whose *constraints* cannot be met still generates — the
    /// result is [`Feasibility::Diagnosed`], never an error or a panic.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (a generated
    /// scenario that fails its own schema round-trip).
    pub fn generate(&self) -> Result<GeneratedScenario, GenerateError> {
        self.validate()?;
        let total_layers = self.pick_total_layers()?;
        let backbones = self.task_backbones();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Exact per-task layer-count allocation, then per-task sampling.
        let counts: Vec<Vec<usize>> = backbones
            .iter()
            .map(|b| achievable_layer_counts(*b))
            .collect();
        let allocation = pick_summing(&mut rng, &counts, total_layers)
            .expect("pick_total_layers returned a reachable total");
        let architectures: Vec<Architecture> = backbones
            .iter()
            .zip(&allocation)
            .map(|(backbone, &count)| sample_architecture(&mut rng, *backbone, count))
            .collect();
        debug_assert_eq!(
            architectures
                .iter()
                .map(Architecture::num_layers)
                .sum::<usize>(),
            total_layers
        );

        let tasks: Vec<TaskSpec> = backbones
            .iter()
            .enumerate()
            .map(|(i, backbone)| TaskSpec {
                name: format!("t{i}-{}", backbone.name()),
                backbone: *backbone,
                weight: 1.0,
            })
            .collect();

        // Feasibility probe on the nominal workload.
        let model = CostModel::paper_calibrated();
        let accelerator = probe_accelerator(&self.accel_pool);
        let probe_area = model.area_um2(&accelerator);
        let costs = WorkloadCosts::build(&model, &architectures, &accelerator);
        let probe_tier = select_tier(costs.total_layers()).tier;
        let (specs, feasibility) = self.probe(costs, probe_area);

        let scenario = Scenario {
            name: format!(
                "gen-s{}-n{}-l{}",
                self.seed, self.network_count, total_layers
            ),
            description: format!(
                "generated: {} task(s), {} nominal layers, tightness {}",
                self.network_count, total_layers, self.constraint_tightness
            ),
            // The scenario schema stores seeds as non-negative integers,
            // so the spec's full-range u64 seed is folded into i64 range.
            seed: self.seed & (i64::MAX as u64),
            tasks,
            specs,
            hardware: self.accel_pool.clone(),
            search: SearchSpec {
                scheduler: SchedulerPolicy::Auto,
                ..SearchSpec::paper()
            },
        };

        // Self-check: the emitted scenario must survive the strict schema
        // bit-identically in both formats.
        let from_toml = Scenario::from_toml_str(&scenario.to_toml_string())
            .expect("generated scenario must parse back from TOML");
        assert_eq!(
            from_toml, scenario,
            "generated scenario does not round-trip through TOML"
        );
        let from_json = Scenario::from_json_str(&scenario.to_json_string())
            .expect("generated scenario must parse back from JSON");
        assert_eq!(
            from_json, scenario,
            "generated scenario does not round-trip through JSON"
        );

        Ok(GeneratedScenario {
            spec: self.clone(),
            scenario,
            architectures,
            total_layers,
            probe_tier,
            feasibility,
        })
    }

    /// Derive the design specs from the probe solves and diagnose
    /// infeasibility.
    fn probe(&self, costs: WorkloadCosts, probe_area: f64) -> (DesignSpecs, Feasibility) {
        if let Some((network, layer)) = first_unmappable_layer(&costs) {
            // No solve can run; emit schema-valid fallback specs.
            let specs = DesignSpecs::new(
                FALLBACK_SPEC,
                FALLBACK_SPEC,
                (probe_area * SPEC_MARGIN).max(1.0),
            );
            return (
                specs,
                Feasibility::Diagnosed(InfeasibilityReason::UnmappableLayer { network, layer }),
            );
        }

        let makespan_lower_bound = costs.makespan_lower_bound();
        // Relaxed solve: what can the workload achieve with no latency
        // spec at all?
        let relaxed_problem = HapProblem::new(costs, RELAXED_LATENCY);
        let (relaxed, _) = solve_tiered(&relaxed_problem);
        let mut latency_spec = relaxed.latency_cycles / self.constraint_tightness;

        // Probe solve under the actual emitted spec.
        let mut problem = HapProblem::new(relaxed_problem.costs, latency_spec);
        let (mut solution, _) = solve_tiered(&problem);
        // The greedy tiers are not monotone in the constraint: on large
        // instances the heuristic's latency-optimal start can be slower
        // than the relaxed end state, so the relaxed makespan may not be
        // re-achievable under its own value as the spec.  When the spec
        // is not meant to be tight (tightness <= 1), loosen it to the
        // makespan the constrained solve actually reached and re-solve;
        // the spec strictly grows each round, and once it covers the
        // solver's start state the acceptance rule makes it feasible.
        if self.constraint_tightness <= 1.0 {
            for _ in 0..4 {
                if solution.feasible {
                    break;
                }
                let achieved = solution.latency_cycles / self.constraint_tightness;
                if !(achieved.is_finite() && achieved > latency_spec) {
                    break;
                }
                latency_spec = achieved;
                let costs = problem.costs;
                problem = HapProblem::new(costs, latency_spec);
                solution = solve_tiered(&problem).0;
            }
        }
        if !solution.feasible {
            let specs = DesignSpecs::new(
                latency_spec,
                relaxed.energy_nj * SPEC_MARGIN,
                (probe_area * SPEC_MARGIN).max(1.0),
            );
            return (
                specs,
                Feasibility::Diagnosed(InfeasibilityReason::LatencyConstraintUnsatisfiable {
                    latency_spec,
                    makespan_lower_bound,
                }),
            );
        }

        let energy_spec = solution.energy_nj * SPEC_MARGIN / self.constraint_tightness;
        let area_spec =
            (probe_area * SPEC_MARGIN / self.constraint_tightness).max(f64::MIN_POSITIVE);
        let specs = DesignSpecs::new(latency_spec, energy_spec, area_spec);
        if solution.energy_nj > energy_spec {
            return (
                specs,
                Feasibility::Diagnosed(InfeasibilityReason::EnergyBudgetExceeded {
                    achieved_nj: solution.energy_nj,
                    energy_spec_nj: energy_spec,
                }),
            );
        }
        if probe_area > area_spec {
            return (
                specs,
                Feasibility::Diagnosed(InfeasibilityReason::AreaBudgetExceeded {
                    achieved_um2: probe_area,
                    area_spec_um2: area_spec,
                }),
            );
        }
        (
            specs,
            Feasibility::Feasible {
                energy_nj: solution.energy_nj,
                makespan_cycles: solution.latency_cycles,
            },
        )
    }

    // -- shrinking --------------------------------------------------------

    /// A scalar complexity measure over specs: every candidate in
    /// [`GeneratorSpec::shrink_candidates`] has a strictly smaller
    /// complexity, so shrinking always terminates.
    pub fn complexity(&self) -> u64 {
        let seed_bits = 64 - u64::from(self.seed.leading_zeros());
        seed_bits
            + self.network_count as u64 * 4
            + self.layer_range.1.saturating_sub(self.layer_range.0) as u64
            + self.backbone_mix.len() as u64 * 4
            + self.accel_pool.sub_accelerators as u64
            + self.accel_pool.dataflows.len() as u64
            + tightness_steps(self.constraint_tightness)
    }

    /// Strictly-simpler variants of this spec, most aggressive first.
    /// Each candidate changes exactly one dimension and has a strictly
    /// smaller [`GeneratorSpec::complexity`].
    pub fn shrink_candidates(&self) -> Vec<GeneratorSpec> {
        let mut out = Vec::new();
        let mut push = |candidate: GeneratorSpec| {
            if candidate.complexity() < self.complexity() {
                out.push(candidate);
            }
        };
        if self.network_count > 1 {
            let mut c = self.clone();
            c.network_count = 1;
            push(c);
            let mut c = self.clone();
            c.network_count = self.network_count / 2;
            push(c);
            let mut c = self.clone();
            c.network_count = self.network_count - 1;
            push(c);
        }
        if self.backbone_mix.len() > 1 {
            let mut c = self.clone();
            c.backbone_mix.truncate(1);
            push(c);
            let mut c = self.clone();
            c.backbone_mix.pop();
            push(c);
        }
        let width = self.layer_range.1 - self.layer_range.0;
        if width > 0 {
            let mut c = self.clone();
            c.layer_range = (self.layer_range.0, self.layer_range.0);
            push(c);
            if width >= 2 {
                let mut c = self.clone();
                c.layer_range = (self.layer_range.0, self.layer_range.0 + width / 2);
                push(c);
            }
        }
        if tightness_steps(self.constraint_tightness) > 0 {
            let mut c = self.clone();
            c.constraint_tightness = 1.0;
            push(c);
            let mut c = self.clone();
            c.constraint_tightness = 1.0 + (self.constraint_tightness - 1.0) / 2.0;
            push(c);
        }
        if self.seed != 0 {
            let mut c = self.clone();
            c.seed = 0;
            push(c);
            let mut c = self.clone();
            c.seed = self.seed / 2;
            push(c);
        }
        if self.accel_pool.sub_accelerators > 1 {
            let mut c = self.clone();
            c.accel_pool.sub_accelerators = 1;
            push(c);
            let mut c = self.clone();
            c.accel_pool.sub_accelerators = self.accel_pool.sub_accelerators / 2;
            push(c);
        }
        if self.accel_pool.dataflows.len() > 1 {
            let mut c = self.clone();
            c.accel_pool.dataflows.truncate(1);
            push(c);
        }
        out
    }
}

/// Walk a failing spec down the shrink lattice until no strictly-simpler
/// candidate still fails, and return that 1-minimal spec.
///
/// `fails` returns `true` when a spec still exhibits the failure being
/// shrunk.  The walk is deterministic (candidate order is fixed) and
/// always terminates because every accepted candidate strictly reduces
/// [`GeneratorSpec::complexity`].  `start` is returned unchanged when it
/// does not fail at all.
pub fn shrink_to_minimal<F>(start: &GeneratorSpec, mut fails: F) -> GeneratorSpec
where
    F: FnMut(&GeneratorSpec) -> bool,
{
    let mut current = start.clone();
    if !fails(&current) {
        return current;
    }
    loop {
        let mut advanced = false;
        for candidate in current.shrink_candidates() {
            if fails(&candidate) {
                current = candidate;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return current;
        }
    }
}

/// Number of halvings needed to bring `|t - 1|` below 0.01 — the
/// integer "distance from neutral" term of the complexity measure.
fn tightness_steps(tightness: f64) -> u64 {
    let mut distance = (tightness - 1.0).abs();
    if !distance.is_finite() {
        return 64;
    }
    let mut steps = 0;
    while distance >= 0.01 && steps < 64 {
        distance /= 2.0;
        steps += 1;
    }
    steps
}

// -- layer-count arithmetic -------------------------------------------------

/// Every total layer count some architecture in the backbone's search
/// space can have, ascending.
///
/// Derived from the search space itself, not hardcoded: a ResNet block
/// with `SK` extra convolutions contributes `2 + SK + 1` layers when
/// `SK > 0` (the element-wise add joins the residual branch) and `2`
/// when `SK = 0`; a U-Net of height `H` has `6H - 3` layers.
pub fn achievable_layer_counts(backbone: Backbone) -> Vec<usize> {
    let space = backbone.search_space();
    let choices = space.choices();
    match backbone {
        Backbone::ResNet9Cifar10 | Backbone::ResNet9Stl10 => {
            let blocks = (choices.len() - 1) / 2;
            // Base: stem + per-block (conv + pool) + head pool + classifier.
            let base = 1 + 2 * blocks + 2;
            let extras_per_block: Vec<Vec<usize>> = (0..blocks)
                .map(|b| {
                    choices[2 * (b + 1)]
                        .options
                        .iter()
                        .map(|&sk| layer_extra_of_sk(sk))
                        .collect()
                })
                .collect();
            let reach = reachable_sums(&extras_per_block);
            let last = reach.last().expect("at least one block");
            (0..last.len())
                .filter(|&s| last[s])
                .map(|s| base + s)
                .collect()
        }
        Backbone::UNetNuclei => {
            let mut counts: Vec<usize> = choices[0].options.iter().map(|&h| 6 * h - 3).collect();
            counts.sort_unstable();
            counts
        }
    }
}

/// Layers a ResNet block's residual branch adds beyond its fixed
/// conv + pool pair: `SK` convolutions plus the element-wise add when
/// the branch is non-empty.
fn layer_extra_of_sk(sk: usize) -> usize {
    if sk == 0 {
        0
    } else {
        sk + 1
    }
}

/// Stage-by-stage subset-sum reachability: `result[t][s]` is `true` when
/// the first `t` slots can sum to `s` picking one option per slot.
fn reachable_sums(options_per_slot: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let max_total: usize = options_per_slot
        .iter()
        .map(|opts| opts.iter().copied().max().unwrap_or(0))
        .sum();
    let mut reach = Vec::with_capacity(options_per_slot.len() + 1);
    let mut stage = vec![false; max_total + 1];
    stage[0] = true;
    reach.push(stage);
    for opts in options_per_slot {
        let prev = reach.last().expect("seeded with stage 0");
        let mut next = vec![false; max_total + 1];
        for s in 0..prev.len() {
            if prev[s] {
                for &c in opts {
                    next[s + c] = true;
                }
            }
        }
        reach.push(next);
    }
    reach
}

/// Pick one option per slot summing exactly to `target`, choosing
/// uniformly at random among the options that keep the target reachable.
/// Returns `None` when `target` is unreachable.
fn pick_summing(
    rng: &mut StdRng,
    options_per_slot: &[Vec<usize>],
    target: usize,
) -> Option<Vec<usize>> {
    let reach = reachable_sums(options_per_slot);
    let last = reach.last()?;
    if target >= last.len() || !last[target] {
        return None;
    }
    let mut picks = vec![0usize; options_per_slot.len()];
    let mut remaining = target;
    for t in (1..=options_per_slot.len()).rev() {
        let valid: Vec<usize> = options_per_slot[t - 1]
            .iter()
            .copied()
            .filter(|&c| c <= remaining && reach[t - 1][remaining - c])
            .collect();
        debug_assert!(!valid.is_empty(), "reachable target must backtrack");
        let choice = valid[rng.gen_range(0..valid.len())];
        picks[t - 1] = choice;
        remaining -= choice;
    }
    debug_assert_eq!(remaining, 0);
    Some(picks)
}

/// Sample a concrete architecture of exactly `num_layers` layers from
/// the backbone's search space (filter counts free, depth knobs chosen
/// to hit the count).
///
/// # Panics
///
/// Panics when `num_layers` is not in [`achievable_layer_counts`].
fn sample_architecture(rng: &mut StdRng, backbone: Backbone, num_layers: usize) -> Architecture {
    let space = backbone.search_space();
    let choices = space.choices();
    let values = match backbone {
        Backbone::ResNet9Cifar10 | Backbone::ResNet9Stl10 => {
            let blocks = (choices.len() - 1) / 2;
            let base = 1 + 2 * blocks + 2;
            assert!(
                num_layers >= base,
                "{num_layers} layers below the {base}-layer minimum of {backbone}"
            );
            let extras_per_block: Vec<Vec<usize>> = (0..blocks)
                .map(|b| {
                    choices[2 * (b + 1)]
                        .options
                        .iter()
                        .map(|&sk| layer_extra_of_sk(sk))
                        .collect()
                })
                .collect();
            let extras = pick_summing(rng, &extras_per_block, num_layers - base)
                .unwrap_or_else(|| panic!("{num_layers} layers unreachable for {backbone}"));
            let mut values = vec![pick(rng, &choices[0].options)];
            for (b, &extra) in extras.iter().enumerate() {
                values.push(pick(rng, &choices[2 * b + 1].options));
                let sk = if extra == 0 { 0 } else { extra - 1 };
                values.push(sk);
            }
            values
        }
        Backbone::UNetNuclei => {
            assert!(
                num_layers >= 3 && (num_layers + 3).is_multiple_of(6),
                "{num_layers} layers is not a U-Net height (counts are 6H - 3)"
            );
            let height = (num_layers + 3) / 6;
            assert!(
                choices[0].options.contains(&height),
                "U-Net height {height} outside the search space"
            );
            let mut values = vec![height];
            for level in &choices[1..] {
                values.push(pick(rng, &level.options));
            }
            values
        }
    };
    let arch = backbone.materialize_values(&values);
    assert_eq!(
        arch.num_layers(),
        num_layers,
        "sampled {backbone} architecture missed its layer target"
    );
    arch
}

/// One uniformly random element of a non-empty option list.
fn pick(rng: &mut StdRng, options: &[usize]) -> usize {
    options[rng.gen_range(0..options.len())]
}

/// The balanced probe accelerator of a pool: the budget split evenly
/// across the sub-accelerators, dataflows assigned round-robin.
fn probe_accelerator(pool: &HardwareSpec) -> Accelerator {
    let subs = (0..pool.sub_accelerators)
        .map(|i| {
            SubAccelerator::new(
                pool.dataflows[i % pool.dataflows.len()],
                pool.max_pes / pool.sub_accelerators,
                pool.max_bandwidth_gbps / pool.sub_accelerators,
            )
        })
        .collect();
    Accelerator::new(subs)
}

/// The first layer with no feasible mapping, as `(network, layer)`.
fn first_unmappable_layer(costs: &WorkloadCosts) -> Option<(String, String)> {
    for network in &costs.networks {
        for row in &network.layers {
            if !row.per_sub.iter().any(nasaic_cost::LayerCost::is_feasible) {
                return Some((network.name.clone(), row.layer_name.clone()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achievable_counts_match_the_closed_forms() {
        assert_eq!(
            achievable_layer_counts(Backbone::ResNet9Cifar10),
            vec![9, 11, 12, 13, 14, 15, 16, 17, 18]
        );
        let stl: Vec<usize> = std::iter::once(13).chain(15..=33).collect();
        assert_eq!(achievable_layer_counts(Backbone::ResNet9Stl10), stl);
        assert_eq!(
            achievable_layer_counts(Backbone::UNetNuclei),
            vec![3, 9, 15, 21, 27]
        );
    }

    #[test]
    fn default_spec_generates_a_feasible_round_tripping_scenario() {
        let spec = GeneratorSpec::default();
        let generated = spec.generate().unwrap();
        let (lo, hi) = spec.layer_range;
        assert!((lo..=hi).contains(&generated.total_layers));
        assert_eq!(generated.scenario.search.scheduler, SchedulerPolicy::Auto);
        match &generated.feasibility {
            Feasibility::Feasible {
                energy_nj,
                makespan_cycles,
            } => {
                assert!(*makespan_cycles <= generated.scenario.specs.latency_cycles);
                assert!(*energy_nj <= generated.scenario.specs.energy_nj);
            }
            other => panic!("default spec should be feasible, got {other}"),
        }
        // The generator already self-checks the round-trip; re-assert the
        // nominal architectures sum to the reported total.
        let layers: usize = generated
            .architectures
            .iter()
            .map(Architecture::num_layers)
            .sum();
        assert_eq!(layers, generated.total_layers);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = GeneratorSpec::sized(39, 2, 17);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scenario.to_toml_string(), b.scenario.to_toml_string());
    }

    #[test]
    fn different_seeds_vary_the_sampled_filters() {
        let a = GeneratorSpec::sized(39, 2, 1).generate().unwrap();
        let b = GeneratorSpec::sized(39, 2, 2).generate().unwrap();
        // Layer totals agree (both target the same range) but the
        // hyperparameters should differ for at least one task.
        assert!(
            a.architectures != b.architectures,
            "two seeds produced identical workloads"
        );
    }

    #[test]
    fn over_tight_constraints_are_diagnosed_not_panicked() {
        let mut spec = GeneratorSpec::sized(20, 2, 5);
        spec.constraint_tightness = 4.0;
        let generated = spec.generate().unwrap();
        match &generated.feasibility {
            Feasibility::Diagnosed(reason) => {
                // The latency spec is a quarter of the relaxed makespan, so
                // the latency diagnosis fires first.
                assert!(
                    matches!(
                        reason,
                        InfeasibilityReason::LatencyConstraintUnsatisfiable { .. }
                            | InfeasibilityReason::EnergyBudgetExceeded { .. }
                    ),
                    "unexpected diagnosis {reason}"
                );
            }
            other => panic!("tightness 4.0 should be diagnosed, got {other}"),
        }
        // The diagnosed scenario is still schema-valid and loadable.
        let reparsed = Scenario::from_toml_str(&generated.scenario.to_toml_string()).unwrap();
        assert_eq!(reparsed, generated.scenario);
    }

    #[test]
    fn structural_errors_are_reported() {
        let spec = GeneratorSpec {
            network_count: 0,
            ..GeneratorSpec::default()
        };
        assert_eq!(spec.validate(), Err(GenerateError::NoNetworks));

        let spec = GeneratorSpec {
            backbone_mix: Vec::new(),
            ..GeneratorSpec::default()
        };
        assert_eq!(spec.validate(), Err(GenerateError::EmptyBackboneMix));

        let spec = GeneratorSpec {
            layer_range: (20, 10),
            ..GeneratorSpec::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(GenerateError::EmptyLayerRange { lo: 20, hi: 10 })
        ));

        let mut spec = GeneratorSpec {
            constraint_tightness: 0.0,
            ..GeneratorSpec::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(GenerateError::InvalidTightness { .. })
        ));
        spec.constraint_tightness = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(GenerateError::InvalidTightness { .. })
        ));

        let mut spec = GeneratorSpec::default();
        spec.accel_pool.sub_accelerators = 64;
        spec.accel_pool.max_pes = 32;
        assert!(matches!(
            spec.validate(),
            Err(GenerateError::InvalidAccelPool { .. })
        ));
    }

    #[test]
    fn unreachable_layer_range_names_the_closest_total() {
        // A single U-Net task can only have 3, 9, 15, 21 or 27 layers.
        let spec = GeneratorSpec {
            layer_range: (10, 12),
            network_count: 1,
            backbone_mix: vec![Backbone::UNetNuclei],
            ..GeneratorSpec::default()
        };
        match spec.validate() {
            Err(GenerateError::UnreachableLayerRange {
                min_total,
                max_total,
                closest,
                ..
            }) => {
                assert_eq!(min_total, 3);
                assert_eq!(max_total, 27);
                assert_eq!(closest, Some(9));
            }
            other => panic!("expected UnreachableLayerRange, got {other:?}"),
        }
    }

    #[test]
    fn hap_problem_reproduces_the_probe_instance() {
        let generated = GeneratorSpec::sized(20, 2, 3).generate().unwrap();
        let problem = generated.hap_problem();
        assert_eq!(problem.costs.total_layers(), generated.total_layers);
        assert_eq!(
            problem.latency_constraint,
            generated.scenario.specs.latency_cycles
        );
    }

    #[test]
    fn probe_tier_follows_the_instance_size() {
        let small = GeneratorSpec::sized(20, 2, 1).generate().unwrap();
        assert_eq!(small.probe_tier, SchedulerTier::Exact);
        let medium = GeneratorSpec::sized(60, 2, 1).generate().unwrap();
        assert_eq!(medium.probe_tier, SchedulerTier::Beam);
    }

    #[test]
    fn shrinker_reaches_a_one_minimal_failing_spec() {
        // Planted failure: specs with at least 2 networks and tightness
        // beyond 1.5 "fail".
        let fails = |s: &GeneratorSpec| s.network_count >= 2 && s.constraint_tightness > 1.5;
        let start = GeneratorSpec {
            seed: 0xDEAD_BEEF,
            layer_range: (20, 60),
            network_count: 16,
            backbone_mix: Backbone::all().to_vec(),
            accel_pool: HardwareSpec::paper(8),
            constraint_tightness: 3.0,
        };
        let minimal = shrink_to_minimal(&start, fails);
        assert!(fails(&minimal), "shrinking must preserve the failure");
        // 1-minimality: no strictly-simpler candidate still fails.
        for candidate in minimal.shrink_candidates() {
            assert!(
                !fails(&candidate),
                "candidate {candidate:?} still fails — not minimal"
            );
        }
        // The planted failure pins the load-bearing dimensions exactly.
        assert_eq!(minimal.network_count, 2);
        assert!(minimal.constraint_tightness > 1.5);
        assert_eq!(minimal.seed, 0);
        assert_eq!(minimal.backbone_mix.len(), 1);
        assert_eq!(minimal.accel_pool.sub_accelerators, 1);
        assert_eq!(minimal.layer_range.0, minimal.layer_range.1);
    }

    #[test]
    fn shrink_candidates_strictly_reduce_complexity() {
        let spec = GeneratorSpec {
            seed: 1234,
            layer_range: (15, 45),
            network_count: 6,
            constraint_tightness: 2.5,
            ..GeneratorSpec::default()
        };
        for candidate in spec.shrink_candidates() {
            assert!(
                candidate.complexity() < spec.complexity(),
                "{candidate:?} does not reduce complexity"
            );
        }
    }

    #[test]
    fn non_failing_start_is_returned_unchanged() {
        let spec = GeneratorSpec::default();
        let result = shrink_to_minimal(&spec, |_| false);
        assert_eq!(result, spec);
    }
}
