//! NASAIC — the neural-architecture / ASIC-accelerator co-exploration
//! framework of Yang et al. (DAC 2020), reproduced in Rust.
//!
//! This crate is the paper's primary contribution: it wires the substrate
//! crates (architecture search spaces, accelerator templates, cost model,
//! mapper/scheduler, accuracy oracle, RL controller) into the NASAIC search
//! loop and provides the baselines and experiment harness that regenerate
//! every figure and table of the paper's evaluation.
//!
//! # Architecture of the framework (paper Fig. 4)
//!
//! 1. **Controller** ([`nasaic_rl::Controller`]) — a recurrent policy with
//!    one segment per DNN and one per sub-accelerator, predicting
//!    architecture hyperparameters and hardware allocations.
//! 2. **Optimizer selector** ([`selector`]) — interleaves one joint
//!    (architecture + hardware) step with `phi` hardware-only steps and
//!    early-prunes architectures for which no feasible hardware design was
//!    found, skipping the expensive accuracy evaluation.
//! 3. **Evaluator** ([`evaluator`]) — the accuracy path (training /
//!    surrogate) and the hardware path (cost model + HAP mapping and
//!    scheduling), combined into the reward of Eq. 4.
//!
//! Every layer that evaluates candidates — the search loop, the
//! [`baselines`], and the [`experiments`] harness — does so through the
//! shared [`engine::EvalEngine`]: memoised accuracy and hardware-metrics
//! caches plus order-preserving batch parallelism, bit-identical to
//! direct [`evaluator::Evaluator`] calls.  NASAIC and all five baselines
//! run behind the one object-safe [`algorithm::SearchAlgorithm`] trait
//! (instantiated via [`scenario::Algorithm::instantiate`]), streaming
//! per-episode telemetry to an optional [`algorithm::SearchObserver`].
//!
//! # Quickstart
//!
//! ```
//! use nasaic_core::prelude::*;
//!
//! let workload = Workload::w1();
//! let specs = DesignSpecs::for_workload(WorkloadId::W1);
//! let outcome = Nasaic::new(workload, specs, NasaicConfig::fast_demo(7)).run();
//! // Every solution NASAIC reports satisfies the design specs.
//! for solution in &outcome.spec_compliant {
//!     assert!(solution.evaluation.meets_specs());
//! }
//! ```

#![deny(missing_docs)]

pub mod algorithm;
pub mod baselines;
pub mod bounds;
pub mod candidate;
pub mod checkpoint;
pub mod engine;
pub mod evaluator;
pub mod experiments;
pub mod log;
pub mod metrics;
pub mod penalty;
pub mod reward;
pub mod scenario;
pub mod search;
pub mod selector;
pub mod spec;
pub mod studies;
pub mod workload;

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::algorithm::{
        emit_search_finished, Budget, MulticastObserver, NullObserver, ProgressObserver,
        RecordingObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
        TraceObserver, TRACE_SCHEMA_VERSION,
    };
    pub use crate::bounds::PenaltyBounds;
    pub use crate::candidate::Candidate;
    pub use crate::checkpoint::{
        merge_replay, CheckpointSink, FileCheckpointSink, NullCheckpointSink,
        RecordingCheckpointSink, SearchCheckpoint, ShardMode, ShardPartial, ShardPlan,
    };
    pub use crate::engine::{CacheStats, EngineConfig, EvalEngine};
    pub use crate::evaluator::{AccuracyOracle, Evaluation, Evaluator};
    pub use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
    pub use crate::metrics::{MetricsObserver, ProfileBreakdown};
    pub use crate::penalty::Penalty;
    pub use crate::reward::Reward;
    pub use crate::scenario::report::RunReport;
    pub use crate::scenario::{registry, Algorithm, Scenario};
    pub use crate::search::{Nasaic, NasaicConfig};
    pub use crate::spec::{DesignSpecs, WorkloadId};
    pub use crate::workload::{Task, Workload};
    pub use nasaic_accel::{Accelerator, Dataflow, HardwareSpace, ResourceBudget, SubAccelerator};
    pub use nasaic_accuracy::{AccuracyCombiner, SurrogateModel};
    pub use nasaic_cost::{CostModel, HardwareMetrics};
    pub use nasaic_nn::backbone::Backbone;
}

pub use prelude::*;
