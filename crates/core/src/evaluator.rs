//! The NASAIC evaluator (paper Fig. 4, component ③).
//!
//! The evaluator has two paths:
//!
//! * **training / validating** — obtain every sampled architecture's
//!   accuracy (here: the calibrated surrogate or the proxy trainer) and
//!   combine them into the weighted accuracy of Eq. 2;
//! * **mapping / scheduling** — build the (layer × sub-accelerator) cost
//!   table with the cost model, solve the heterogeneous assignment problem
//!   under the latency spec, and read latency, energy and area.

use crate::candidate::Candidate;
use crate::spec::{DesignSpecs, SpecCheck};
use crate::workload::Workload;
use nasaic_accel::Accelerator;
use nasaic_accuracy::proxy::ProxyAccuracyModel;
use nasaic_accuracy::{AccuracyCombiner, AccuracyModel, SurrogateModel};
use nasaic_cost::{CostModel, HardwareMetrics, LayerCostCache, WorkloadCosts};
use nasaic_nn::layer::Architecture;
use nasaic_sched::{solve_heuristic, solve_with_policy, HapProblem, SchedulerPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The accuracy oracle used by the evaluator.
///
/// The calibrated surrogate is the default; the proxy trainer exercises a
/// real train/validate loop on synthetic data (slower, used in examples
/// and tests of the full pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccuracyOracle {
    /// Calibrated analytical surrogate (fast, default).
    Surrogate(SurrogateModel),
    /// Proxy MLP training on synthetic data.
    Proxy(ProxyAccuracyModel),
}

impl AccuracyOracle {
    /// Evaluate one architecture's accuracy.
    pub fn evaluate(&self, backbone: nasaic_nn::backbone::Backbone, arch: &Architecture) -> f64 {
        match self {
            AccuracyOracle::Surrogate(m) => m.evaluate(backbone, arch),
            AccuracyOracle::Proxy(m) => m.evaluate(backbone, arch),
        }
    }

    /// Name of the oracle.
    pub fn name(&self) -> &'static str {
        match self {
            AccuracyOracle::Surrogate(_) => "calibrated-surrogate",
            AccuracyOracle::Proxy(_) => "proxy-trainer",
        }
    }
}

impl Default for AccuracyOracle {
    fn default() -> Self {
        AccuracyOracle::Surrogate(SurrogateModel::paper_calibrated())
    }
}

/// The result of evaluating one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-task accuracy (or IOU), in workload order.
    pub accuracies: Vec<f64>,
    /// Weighted accuracy of Eq. 2.
    pub weighted_accuracy: f64,
    /// Hardware metrics (latency of the best mapping found under the
    /// latency spec, its energy, and the accelerator area).
    pub metrics: HardwareMetrics,
    /// Per-spec satisfaction.
    pub spec_check: SpecCheck,
    /// `true` when the mapper found a schedule within the latency spec.
    pub mapping_feasible: bool,
}

impl Evaluation {
    /// `true` when all three design specs are met.
    pub fn meets_specs(&self) -> bool {
        self.spec_check.all()
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {:?} (weighted {:.4}), {}, specs {}",
            self.accuracies
                .iter()
                .map(|a| (a * 1e4).round() / 1e4)
                .collect::<Vec<_>>(),
            self.weighted_accuracy,
            self.metrics,
            self.spec_check.symbol()
        )
    }
}

/// The evaluator: accuracy path + hardware path for a fixed workload and
/// spec set.
///
/// Layer-cost analyses are memoised in a [`LayerCostCache`] shared by all
/// clones of this evaluator (layer shapes and quantised sub-accelerators
/// form small discrete spaces, so the same cells recur across a search).
/// The memo is valid per cost model; [`Evaluator::with_cost_model`]
/// starts a fresh one.
#[derive(Debug, Clone)]
pub struct Evaluator {
    workload: Workload,
    specs: DesignSpecs,
    cost_model: CostModel,
    oracle: AccuracyOracle,
    combiner: AccuracyCombiner,
    layer_cost_cache: Arc<LayerCostCache>,
    scheduler: SchedulerPolicy,
}

impl Evaluator {
    /// Create an evaluator with the paper-calibrated cost model and the
    /// workload's own task weights.
    pub fn new(workload: &Workload, specs: DesignSpecs, oracle: AccuracyOracle) -> Self {
        Self {
            workload: workload.clone(),
            specs,
            cost_model: CostModel::paper_calibrated(),
            oracle,
            combiner: workload.combiner(),
            layer_cost_cache: Arc::new(LayerCostCache::new()),
            scheduler: SchedulerPolicy::Heuristic,
        }
    }

    /// Replace the cost model (e.g. for a re-calibrated technology).
    ///
    /// The layer-cost memo is keyed by the model it was filled against,
    /// so this also starts a fresh (un-shared) cache.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self.layer_cost_cache = Arc::new(LayerCostCache::new());
        self
    }

    /// Replace the accuracy combiner.
    pub fn with_combiner(mut self, combiner: AccuracyCombiner) -> Self {
        self.combiner = combiner;
        self
    }

    /// Replace the HAP scheduler policy (default:
    /// [`SchedulerPolicy::Heuristic`], the paper's solver — every other
    /// policy is opt-in because it changes which mapping the hardware
    /// path reports).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The HAP scheduler policy in use.
    pub fn scheduler(&self) -> SchedulerPolicy {
        self.scheduler
    }

    /// The design specs the evaluator checks against.
    pub fn specs(&self) -> &DesignSpecs {
        &self.specs
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Accuracy of every architecture (training/validation path).
    pub fn accuracies(&self, architectures: &[Architecture]) -> Vec<f64> {
        self.workload
            .tasks
            .iter()
            .zip(architectures)
            .map(|(task, arch)| {
                let _span = crate::metrics::maybe_time(crate::metrics::eval_accuracy_wall);
                self.oracle.evaluate(task.backbone, arch)
            })
            .collect()
    }

    /// Accuracy of one architecture evaluated as the workload's
    /// `task_index`-th task (a single oracle query — the per-task unit the
    /// engine memoises).
    ///
    /// # Panics
    ///
    /// Panics if `task_index` is out of range for the workload.
    pub fn accuracy_for_task(&self, task_index: usize, arch: &Architecture) -> f64 {
        let _span = crate::metrics::maybe_time(crate::metrics::eval_accuracy_wall);
        self.oracle
            .evaluate(self.workload.tasks[task_index].backbone, arch)
    }

    /// The weighted accuracy of Eq. 2.
    pub fn weighted_accuracy(&self, accuracies: &[f64]) -> f64 {
        self.combiner.combine(accuracies)
    }

    /// Hardware metrics of a set of architectures on an accelerator
    /// (mapping/scheduling path): solve the HAP under the latency spec and
    /// combine with the accelerator area.
    ///
    /// The cost table is assembled from the shared layer-cost memo, so
    /// repeated layer geometries across candidates pay the mapping
    /// analysis once.  Bit-identical to
    /// [`Evaluator::hardware_metrics_reference`].
    pub fn hardware_metrics(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> HardwareMetrics {
        if !accelerator.has_capacity() {
            return HardwareMetrics::infeasible();
        }
        let costs = {
            let _span = crate::metrics::maybe_time(crate::metrics::eval_cost_model_wall);
            self.layer_cost_cache
                .workload_costs(&self.cost_model, architectures, accelerator)
        };
        self.metrics_from_costs(costs, accelerator)
    }

    /// [`Evaluator::hardware_metrics`] with every layer cost recomputed
    /// from scratch (no memo).  Retained as the reference path for the
    /// `eval_baseline` identity gate and timing comparison.
    pub fn hardware_metrics_reference(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> HardwareMetrics {
        if !accelerator.has_capacity() {
            return HardwareMetrics::infeasible();
        }
        let costs = {
            let _span = crate::metrics::maybe_time(crate::metrics::eval_cost_model_wall);
            WorkloadCosts::build(&self.cost_model, architectures, accelerator)
        };
        self.metrics_from_costs(costs, accelerator)
    }

    /// Shared tail of the hardware path: schedulability check, HAP solve,
    /// area.
    fn metrics_from_costs(
        &self,
        costs: WorkloadCosts,
        accelerator: &Accelerator,
    ) -> HardwareMetrics {
        if !costs.is_schedulable() {
            return HardwareMetrics::infeasible();
        }
        let problem = HapProblem::new(costs, self.specs.latency_cycles);
        // The heuristic default stays a direct `solve_heuristic` call so
        // the paper path is trivially bit-identical to the pre-tier code;
        // every other policy dispatches through the tier layer.
        let solution = {
            let _span = crate::metrics::maybe_time(crate::metrics::eval_sched_solve_wall);
            match self.scheduler {
                SchedulerPolicy::Heuristic => solve_heuristic(&problem),
                policy => solve_with_policy(&problem, policy).0,
            }
        };
        HardwareMetrics::new(
            solution.latency_cycles,
            solution.energy_nj,
            self.cost_model.area_um2(accelerator),
        )
    }

    /// Full evaluation of a candidate: both paths plus the spec check.
    pub fn evaluate(&self, candidate: &Candidate) -> Evaluation {
        let accuracies = self.accuracies(&candidate.architectures);
        let metrics = self.hardware_metrics(&candidate.architectures, &candidate.accelerator);
        self.assemble_evaluation(accuracies, metrics)
    }

    /// Assemble an [`Evaluation`] from precomputed accuracy and hardware
    /// results.  This is the single construction point shared with
    /// [`crate::engine::EvalEngine`], so the cached path cannot drift from
    /// the direct one.
    pub fn assemble_evaluation(
        &self,
        accuracies: Vec<f64>,
        metrics: HardwareMetrics,
    ) -> Evaluation {
        let weighted_accuracy = self.weighted_accuracy(&accuracies);
        let spec_check = self.specs.check(&metrics);
        Evaluation {
            accuracies,
            weighted_accuracy,
            mapping_feasible: metrics.latency_cycles <= self.specs.latency_cycles,
            metrics,
            spec_check,
        }
    }

    /// Hardware-only evaluation (used by the optimizer selector when the
    /// architecture switch is closed): metrics plus spec check, no
    /// accuracy.
    pub fn evaluate_hardware(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> (HardwareMetrics, SpecCheck) {
        let metrics = self.hardware_metrics(architectures, accelerator);
        (metrics, self.specs.check(&metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadId;
    use nasaic_accel::{Dataflow, SubAccelerator};
    use nasaic_nn::backbone::Backbone;

    fn small_architectures(workload: &Workload) -> Vec<Architecture> {
        workload
            .tasks
            .iter()
            .map(|t| t.backbone.smallest_architecture())
            .collect()
    }

    fn two_sub_accelerator() -> Accelerator {
        // A moderate design comparable to the paper's NASAIC W1/W3 results
        // (<dla, 1760, 56> + <shi, 1152, 8> in Table II).
        Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1760, 40),
            SubAccelerator::new(Dataflow::Shidiannao, 1152, 24),
        ])
    }

    #[test]
    fn accuracy_path_matches_surrogate_directly() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let archs = small_architectures(&workload);
        let accs = evaluator.accuracies(&archs);
        assert_eq!(accs.len(), 2);
        let direct =
            SurrogateModel::paper_calibrated().evaluate(Backbone::ResNet9Cifar10, &archs[0]);
        assert_eq!(accs[0], direct);
        let weighted = evaluator.weighted_accuracy(&accs);
        assert!((weighted - (accs[0] + accs[1]) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn hardware_metrics_are_finite_for_active_designs() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let metrics =
            evaluator.hardware_metrics(&small_architectures(&workload), &two_sub_accelerator());
        assert!(metrics.is_feasible());
        assert!(metrics.latency_cycles > 0.0);
        assert!(metrics.area_um2 > 1e8);
    }

    #[test]
    fn cached_hardware_metrics_match_reference_bit_for_bit() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let archs = small_architectures(&workload);
        let acc = two_sub_accelerator();
        let reference = evaluator.hardware_metrics_reference(&archs, &acc);
        // Cold (filling the memo) and warm (serving from it) both match.
        for _ in 0..2 {
            let cached = evaluator.hardware_metrics(&archs, &acc);
            assert_eq!(
                cached.latency_cycles.to_bits(),
                reference.latency_cycles.to_bits()
            );
            assert_eq!(cached.energy_nj.to_bits(), reference.energy_nj.to_bits());
            assert_eq!(cached.area_um2.to_bits(), reference.area_um2.to_bits());
        }
        // Clones share the memo; a swapped cost model starts a fresh one.
        let clone = evaluator.clone();
        assert!(Arc::ptr_eq(
            &evaluator.layer_cost_cache,
            &clone.layer_cost_cache
        ));
        let swapped = clone.with_cost_model(CostModel::paper_calibrated());
        assert!(!Arc::ptr_eq(
            &evaluator.layer_cost_cache,
            &swapped.layer_cost_cache
        ));
    }

    #[test]
    fn empty_accelerator_is_infeasible() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let acc = Accelerator::new(vec![SubAccelerator::inactive(Dataflow::Nvdla)]);
        let metrics = evaluator.hardware_metrics(&small_architectures(&workload), &acc);
        assert!(!metrics.is_feasible());
    }

    #[test]
    fn small_architectures_meet_w1_specs_on_a_balanced_design() {
        // The paper's lower-bound solutions (blue crosses in Fig. 6) always
        // sit inside the spec region; verify the smallest architectures fit
        // W1's specs on a reasonable design.
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let candidate =
            Candidate::from_parts(small_architectures(&workload), two_sub_accelerator());
        let evaluation = evaluator.evaluate(&candidate);
        assert!(
            evaluation.meets_specs(),
            "smallest architectures should satisfy W1 specs, got {}",
            evaluation
        );
    }

    #[test]
    fn largest_architectures_violate_w1_specs_even_with_full_resources() {
        // The paper's key observation (Fig. 1, Table I): the architectures
        // NAS picks for accuracy alone cannot meet the specs no matter how
        // the hardware budget is spent.
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let architectures: Vec<Architecture> = workload
            .tasks
            .iter()
            .map(|t| t.backbone.largest_architecture())
            .collect();
        let full = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let candidate = Candidate::from_parts(architectures, full);
        let evaluation = evaluator.evaluate(&candidate);
        assert!(
            !evaluation.meets_specs(),
            "largest architectures unexpectedly met the specs: {}",
            evaluation
        );
    }

    #[test]
    fn evaluation_display_is_informative() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let candidate =
            Candidate::from_parts(small_architectures(&workload), two_sub_accelerator());
        let text = evaluator.evaluate(&candidate).to_string();
        assert!(text.contains("weighted") && text.contains("specs"));
    }

    #[test]
    fn oracle_names() {
        assert_eq!(AccuracyOracle::default().name(), "calibrated-surrogate");
        assert_eq!(
            AccuracyOracle::Proxy(ProxyAccuracyModel::default()).name(),
            "proxy-trainer"
        );
    }
}
