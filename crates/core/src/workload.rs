//! Multi-task application workloads.

use crate::spec::WorkloadId;
use nasaic_accel::space::{BW_LEVELS, PE_LEVELS};
use nasaic_accel::HardwareSpace;
use nasaic_accuracy::AccuracyCombiner;
use nasaic_nn::backbone::Backbone;
use nasaic_rl::Segment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One AI task `T_i` of a workload: a backbone (which fixes the dataset and
/// the search space) plus the weight `alpha_i` it receives in the combined
/// accuracy (Eq. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task name used in logs and controller segment names.
    pub name: String,
    /// The backbone searched for this task.
    pub backbone: Backbone,
    /// Weight `alpha_i` in the combined accuracy.
    pub weight: f64,
}

impl Task {
    /// Create a task.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not in `(0, 1]`.
    pub fn new(name: &str, backbone: Backbone, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight <= 1.0,
            "task weight must be in (0, 1]"
        );
        Self {
            name: name.to_string(),
            backbone,
            weight,
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, alpha={})",
            self.name, self.backbone, self.weight
        )
    }
}

/// A multi-task workload `W = <T_1, ..., T_m>`.
///
/// A workload is identified by a free-form `name` — the paper's `W1`–`W3`
/// tables are just three well-known names — so arbitrary task vectors flow
/// through the controller, evaluator, baselines and experiments without a
/// closed enum in the way.  [`Workload::paper_id`] recovers the paper
/// identifier when the name happens to be one of the paper's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (`"W1"`..`"W3"` for the paper's tables, a scenario
    /// name, or `"custom"`).
    pub name: String,
    /// The tasks, in order.
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Create an anonymous (`"custom"`) workload from tasks.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(tasks: Vec<Task>) -> Self {
        Self::named("custom", tasks)
    }

    /// Create a named workload from tasks.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn named(name: &str, tasks: Vec<Task>) -> Self {
        assert!(!tasks.is_empty(), "workload needs at least one task");
        Self {
            name: name.to_string(),
            tasks,
        }
    }

    /// W1: CIFAR-10 classification + Nuclei segmentation, equal weights.
    pub fn w1() -> Self {
        Self::named(
            "W1",
            vec![
                Task::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
                Task::new("segmentation-nuclei", Backbone::UNetNuclei, 0.5),
            ],
        )
    }

    /// W2: CIFAR-10 + STL-10 classification, equal weights.
    pub fn w2() -> Self {
        Self::named(
            "W2",
            vec![
                Task::new("classification-cifar10", Backbone::ResNet9Cifar10, 0.5),
                Task::new("classification-stl10", Backbone::ResNet9Stl10, 0.5),
            ],
        )
    }

    /// W3: two CIFAR-10 classification tasks, equal weights.
    pub fn w3() -> Self {
        Self::named(
            "W3",
            vec![
                Task::new("classification-cifar10-a", Backbone::ResNet9Cifar10, 0.5),
                Task::new("classification-cifar10-b", Backbone::ResNet9Cifar10, 0.5),
            ],
        )
    }

    /// The workload for a paper identifier.
    pub fn for_id(id: WorkloadId) -> Self {
        match id {
            WorkloadId::W1 => Self::w1(),
            WorkloadId::W2 => Self::w2(),
            WorkloadId::W3 => Self::w3(),
        }
    }

    /// The workload a scenario declares: one [`Task`] per scenario task,
    /// named after the scenario (canonicalised to the paper's `W1`–`W3`
    /// spelling when the scenario is one of the paper workloads).
    ///
    /// ```
    /// use nasaic_core::scenario::registry;
    /// use nasaic_core::workload::Workload;
    ///
    /// let scenario = registry::get("w1").expect("w1 is a built-in");
    /// // The declarative path reproduces the hardcoded constructor exactly.
    /// assert_eq!(Workload::from_scenario(&scenario), Workload::w1());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the scenario declares no tasks (a parsed scenario is
    /// validated before this point).
    pub fn from_scenario(scenario: &crate::scenario::Scenario) -> Self {
        let name = match WorkloadId::from_name(&scenario.name) {
            Some(id) => id.to_string(),
            None => scenario.name.clone(),
        };
        Self::named(
            &name,
            scenario
                .tasks
                .iter()
                .map(|t| Task::new(&t.name, t.backbone, t.weight))
                .collect(),
        )
    }

    /// The paper identifier of this workload, when its name is one of the
    /// paper's three (`W1`/`W2`/`W3`, case-insensitive).
    pub fn paper_id(&self) -> Option<WorkloadId> {
        WorkloadId::from_name(&self.name)
    }

    /// Number of tasks `m`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Task weights as an [`AccuracyCombiner`].
    pub fn combiner(&self) -> AccuracyCombiner {
        let total: f64 = self.tasks.iter().map(|t| t.weight).sum();
        AccuracyCombiner::Weighted(self.tasks.iter().map(|t| t.weight / total).collect())
    }

    /// The controller segments of this workload combined with a hardware
    /// space (Fig. 5): first one segment per DNN, then one per
    /// sub-accelerator.
    pub fn controller_segments(&self, hardware: &HardwareSpace) -> Vec<Segment> {
        let mut segments: Vec<Segment> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                Segment::new(
                    &format!("dnn{i}-{}", task.name),
                    task.backbone.search_space().cardinalities(),
                )
            })
            .collect();
        for i in 0..hardware.num_sub_accelerators() {
            segments.push(Segment::new(
                &format!("aic{i}"),
                vec![hardware.allowed_dataflows().len(), PE_LEVELS, BW_LEVELS],
            ));
        }
        segments
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tasks)", self.name, self.num_tasks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_have_two_tasks_each() {
        assert_eq!(Workload::w1().num_tasks(), 2);
        assert_eq!(Workload::w2().num_tasks(), 2);
        assert_eq!(Workload::w3().num_tasks(), 2);
    }

    #[test]
    fn w1_mixes_classification_and_segmentation() {
        let w1 = Workload::w1();
        assert_eq!(w1.tasks[0].backbone, Backbone::ResNet9Cifar10);
        assert_eq!(w1.tasks[1].backbone, Backbone::UNetNuclei);
        assert_eq!(w1.paper_id(), Some(WorkloadId::W1));
    }

    #[test]
    fn combiner_normalises_weights() {
        let workload = Workload::new(vec![
            Task::new("a", Backbone::ResNet9Cifar10, 1.0),
            Task::new("b", Backbone::ResNet9Cifar10, 1.0),
        ]);
        let combined = workload.combiner().combine(&[0.9, 0.7]);
        assert!((combined - 0.8).abs() < 1e-12);
    }

    #[test]
    fn controller_segments_cover_tasks_and_subs() {
        let workload = Workload::w1();
        let hardware = HardwareSpace::paper_default(2);
        let segments = workload.controller_segments(&hardware);
        assert_eq!(segments.len(), 4);
        assert_eq!(segments[0].len(), 7); // CIFAR ResNet-9 choice points
        assert_eq!(segments[1].len(), 6); // Nuclei U-Net choice points
        assert_eq!(segments[2].cardinalities, vec![3, PE_LEVELS, BW_LEVELS]);
        assert!(segments[3].name.starts_with("aic"));
    }

    #[test]
    fn for_id_round_trips() {
        for id in [WorkloadId::W1, WorkloadId::W2, WorkloadId::W3] {
            assert_eq!(Workload::for_id(id).paper_id(), Some(id));
        }
    }

    #[test]
    fn custom_names_have_no_paper_id() {
        let custom = Workload::named("quad-mix", vec![Task::new("x", Backbone::UNetNuclei, 1.0)]);
        assert_eq!(custom.paper_id(), None);
        assert!(custom.to_string().contains("quad-mix"));
    }

    #[test]
    fn display_mentions_workload_id() {
        assert!(Workload::w3().to_string().contains("W3"));
        let custom = Workload::new(vec![Task::new("x", Backbone::UNetNuclei, 1.0)]);
        assert!(custom.to_string().contains("custom"));
    }

    #[test]
    #[should_panic]
    fn empty_workload_rejected() {
        Workload::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_weight_task_rejected() {
        Task::new("bad", Backbone::ResNet9Cifar10, 0.0);
    }
}
