//! Fig. 1 — the motivation experiment.
//!
//! The paper's opening figure shows, for a single CIFAR-10 classification
//! task with a ResNet-9 search space, that:
//!
//! * every solution obtained by *successive* NAS→ASIC optimisation violates
//!   the design specs (circles);
//! * NAS made aware of one fixed ASIC design is feasible but loses accuracy
//!   (triangle);
//! * picking the explored solution closest to the specs is also sub-optimal
//!   (square);
//! * the joint optimum found by 10,000 Monte-Carlo runs uses a *different*
//!   ASIC design and gets higher accuracy (star).
//!
//! Because the figure shows a single network, the experiment uses a
//! single-task CIFAR-10 workload with the W3 specs scaled for one network
//! instance (latency and energy halved), documented in DESIGN.md.

use crate::baselines::{AsicThenHwNas, MonteCarloSearch, NasThenAsic};
use crate::engine::EvalEngine;
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::experiments::{ExperimentScale, ScatterPoint};
use crate::spec::{DesignSpecs, WorkloadId};
use crate::workload::{Task, Workload};
use nasaic_accel::HardwareSpace;
use nasaic_nn::backbone::Backbone;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The data behind Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// The design specs (the black diamond).
    pub specs: DesignSpecs,
    /// Successive NAS→ASIC solutions (the circles).
    pub nas_then_asic: Vec<ScatterPoint>,
    /// The hardware-aware NAS solution on a fixed ASIC design (the
    /// triangle).
    pub hw_aware_nas: Option<ScatterPoint>,
    /// The explored solution closest to the specs (the square).
    pub closest_to_specs: Option<ScatterPoint>,
    /// The best solution of the Monte-Carlo joint search (the star).
    pub monte_carlo_optimal: Option<ScatterPoint>,
}

impl Fig1Result {
    /// Accuracy of the NAS architecture (shared by every NAS→ASIC point).
    pub fn nas_accuracy(&self) -> Option<f64> {
        self.nas_then_asic
            .first()
            .and_then(|p| p.accuracies.first().copied())
    }

    /// `true` when every NAS→ASIC point violates at least one spec.
    pub fn all_nas_points_violate_specs(&self) -> bool {
        self.nas_then_asic.iter().all(|p| {
            p.latency_cycles > self.specs.latency_cycles
                || p.energy_nj > self.specs.energy_nj
                || p.area_um2 > self.specs.area_um2
        })
    }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 1 — design space exploration ({})", self.specs)?;
        writeln!(
            f,
            "  NAS->ASIC: {} solutions, accuracy {:.2}%, all violate specs: {}",
            self.nas_then_asic.len(),
            self.nas_accuracy().unwrap_or(0.0) * 100.0,
            self.all_nas_points_violate_specs()
        )?;
        if let Some(p) = &self.hw_aware_nas {
            writeln!(f, "  HW-aware NAS: {p}")?;
        }
        if let Some(p) = &self.closest_to_specs {
            writeln!(f, "  closest-to-spec heuristic: {p}")?;
        }
        if let Some(p) = &self.monte_carlo_optimal {
            writeln!(f, "  Monte-Carlo optimum: {p}")?;
        }
        Ok(())
    }
}

/// The single-task workload and spec set used by the Fig. 1 experiment.
pub fn fig1_setting() -> (Workload, DesignSpecs) {
    let workload = Workload::new(vec![Task::new(
        "classification-cifar10",
        Backbone::ResNet9Cifar10,
        1.0,
    )]);
    // One network instance: half of W3's latency/energy budget.
    let specs = DesignSpecs::for_workload(WorkloadId::W3).scaled(0.5, 0.5, 1.0);
    (workload, specs)
}

/// Run the Fig. 1 experiment at a given scale.
///
/// All four series evaluate through one shared [`EvalEngine`] — the
/// Monte-Carlo sweep and the baselines revisit overlapping regions of the
/// single-task design space, so the caches carry across series.
pub fn run(scale: ExperimentScale, seed: u64) -> Fig1Result {
    let (workload, specs) = fig1_setting();
    let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
    let hardware = HardwareSpace::paper_default(2);

    // Circles: successive NAS then brute-force ASIC sweep.
    let nas_baseline = NasThenAsic {
        nas_episodes: scale.episodes(),
        hardware_samples: scale.hardware_samples(),
        seed,
    };
    let (sweep, _) = nas_baseline.run_with_engine(&workload, specs, &hardware, &engine);
    let nas_then_asic: Vec<ScatterPoint> = sweep
        .explored
        .iter()
        .map(|s| ScatterPoint {
            latency_cycles: s.evaluation.metrics.latency_cycles,
            energy_nj: s.evaluation.metrics.energy_nj,
            area_um2: s.evaluation.metrics.area_um2,
            accuracies: s.evaluation.accuracies.clone(),
            label: s.candidate.accelerator.paper_notation(),
        })
        .collect();

    // Triangle: hardware-aware NAS on the Monte-Carlo-selected design.
    let hwnas_baseline = AsicThenHwNas {
        monte_carlo_runs: scale.monte_carlo_runs() / 2,
        nas_episodes: scale.episodes(),
        rho: 10.0,
        seed: seed ^ 0x17,
    };
    let (_, hwnas_outcome) = hwnas_baseline.run_with_engine(&workload, specs, &hardware, &engine);
    let hw_aware_nas = hwnas_outcome.best.as_ref().map(|s| ScatterPoint {
        latency_cycles: s.evaluation.metrics.latency_cycles,
        energy_nj: s.evaluation.metrics.energy_nj,
        area_um2: s.evaluation.metrics.area_um2,
        accuracies: s.evaluation.accuracies.clone(),
        label: "HW-aware NAS".to_string(),
    });

    // Star + square: joint Monte-Carlo search.
    let mc = MonteCarloSearch {
        runs: scale.monte_carlo_runs(),
        seed: seed ^ 0x2a,
    };
    let mc_outcome = mc.run_with_engine(&workload, &hardware, &engine);
    let monte_carlo_optimal = mc_outcome.best.as_ref().map(|s| ScatterPoint {
        latency_cycles: s.evaluation.metrics.latency_cycles,
        energy_nj: s.evaluation.metrics.energy_nj,
        area_um2: s.evaluation.metrics.area_um2,
        accuracies: s.evaluation.accuracies.clone(),
        label: "MC optimum".to_string(),
    });
    // The "heuristic" square: among compliant MC solutions, the one closest
    // to the specs (largest normalised resource usage).
    let closest_to_specs = mc_outcome
        .spec_compliant
        .iter()
        .max_by(|a, b| {
            let closeness = |s: &&crate::log::ExploredSolution| {
                let m = &s.evaluation.metrics;
                m.latency_cycles / specs.latency_cycles
                    + m.energy_nj / specs.energy_nj
                    + m.area_um2 / specs.area_um2
            };
            closeness(a).total_cmp(&closeness(b))
        })
        .map(|s| ScatterPoint {
            latency_cycles: s.evaluation.metrics.latency_cycles,
            energy_nj: s.evaluation.metrics.energy_nj,
            area_um2: s.evaluation.metrics.area_um2,
            accuracies: s.evaluation.accuracies.clone(),
            label: "closest to specs".to_string(),
        });

    Fig1Result {
        specs,
        nas_then_asic,
        hw_aware_nas,
        closest_to_specs,
        monte_carlo_optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_the_papers_qualitative_shape() {
        let result = run(ExperimentScale::Quick, 21);
        // 1. Successive optimisation: every point violates the specs.
        assert!(!result.nas_then_asic.is_empty());
        assert!(result.all_nas_points_violate_specs());
        // 2. The NAS accuracy is the highest accuracy in the figure.
        let nas_acc = result.nas_accuracy().unwrap();
        assert!(nas_acc > 0.93);
        // 3. The Monte-Carlo optimum is feasible and loses some accuracy
        //    relative to unconstrained NAS.
        let star = result
            .monte_carlo_optimal
            .as_ref()
            .expect("MC found a compliant design");
        let star_acc = star.accuracies[0];
        assert!(star_acc < nas_acc);
        assert!(star_acc > 0.80);
        // 4. The closest-to-spec heuristic is no better than the optimum.
        if let Some(square) = &result.closest_to_specs {
            assert!(square.accuracies[0] <= star_acc + 1e-9);
        }
        // 5. Hardware-aware NAS on a fixed design is feasible but not above
        //    the joint optimum by more than the surrogate noise.
        if let Some(triangle) = &result.hw_aware_nas {
            assert!(triangle.accuracies[0] <= star_acc + 0.02);
        }
    }

    #[test]
    fn fig1_display_lists_every_series() {
        let result = run(ExperimentScale::Quick, 22);
        let text = result.to_string();
        assert!(text.contains("NAS->ASIC"));
        assert!(text.contains("Monte-Carlo"));
    }
}
