//! Fig. 6 — NASAIC exploration results on the three workloads.
//!
//! For each workload (W1, W2, W3) the figure shows the design specs, every
//! spec-compliant solution explored by NASAIC (green diamonds), the
//! accuracy lower bound obtained by pairing the smallest architectures with
//! random accelerator designs (blue crosses), and the best solution found
//! (red star).

use crate::engine::{parallel_map, pool::divided_threads, EngineConfig};
use crate::experiments::{ExperimentScale, ScatterPoint};
use crate::search::{Nasaic, NasaicConfig};
use crate::spec::{DesignSpecs, WorkloadId};
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_nn::layer::Architecture;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The exploration data of one panel (one workload) of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Panel {
    /// Which workload the panel shows.
    pub workload: WorkloadId,
    /// The design specs of the workload.
    pub specs: DesignSpecs,
    /// Spec-compliant solutions explored by NASAIC.
    pub explored: Vec<ScatterPoint>,
    /// The best solution (highest weighted accuracy).
    pub best: Option<ScatterPoint>,
    /// Lower-bound points: smallest architectures on random hardware.
    pub lower_bounds: Vec<ScatterPoint>,
    /// Accuracy of the smallest architectures (the figure's blue numbers).
    pub lower_bound_accuracies: Vec<f64>,
    /// Number of episodes NASAIC ran for this panel.
    pub episodes: usize,
}

impl Fig6Panel {
    /// `true` when every explored (green) solution satisfies the specs.
    pub fn all_explored_meet_specs(&self) -> bool {
        self.explored.iter().all(|p| {
            p.latency_cycles <= self.specs.latency_cycles
                && p.energy_nj <= self.specs.energy_nj
                && p.area_um2 <= self.specs.area_um2
        })
    }

    /// Best weighted accuracy of the panel.
    pub fn best_weighted_accuracy(&self) -> Option<f64> {
        self.best
            .as_ref()
            .map(|p| p.accuracies.iter().sum::<f64>() / p.accuracies.len() as f64)
    }

    /// Weighted accuracy of the lower bound.
    pub fn lower_bound_weighted_accuracy(&self) -> f64 {
        self.lower_bound_accuracies.iter().sum::<f64>() / self.lower_bound_accuracies.len() as f64
    }
}

impl fmt::Display for Fig6Panel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 panel {} — {} ({} episodes)",
            self.workload, self.specs, self.episodes
        )?;
        writeln!(
            f,
            "  {} compliant solutions explored, {} lower-bound points",
            self.explored.len(),
            self.lower_bounds.len()
        )?;
        writeln!(
            f,
            "  lower-bound accuracy: {:?}",
            self.lower_bound_accuracies
                .iter()
                .map(|a| format!("{:.2}%", a * 100.0))
                .collect::<Vec<_>>()
        )?;
        match &self.best {
            Some(best) => writeln!(f, "  best solution: {best}"),
            None => writeln!(f, "  best solution: none"),
        }
    }
}

/// The full figure: one panel per workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Panels in paper order (W1, W2, W3).
    pub panels: Vec<Fig6Panel>,
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for panel in &self.panels {
            write!(f, "{panel}")?;
        }
        Ok(())
    }
}

/// Run one panel of Fig. 6.
pub fn run_panel(workload_id: WorkloadId, scale: ExperimentScale, seed: u64) -> Fig6Panel {
    run_panel_with_threads(workload_id, scale, seed, 0)
}

/// [`run_panel`] with an explicit engine worker ceiling (`0` = all cores);
/// the parallel figure fan-out passes each panel its share of the machine.
pub fn run_panel_with_threads(
    workload_id: WorkloadId,
    scale: ExperimentScale,
    seed: u64,
    engine_threads: usize,
) -> Fig6Panel {
    let engine_config = EngineConfig {
        threads: engine_threads,
        ..EngineConfig::default()
    };
    let workload = Workload::for_id(workload_id);
    let specs = DesignSpecs::for_workload(workload_id);
    let config = NasaicConfig {
        episodes: scale.episodes(),
        hardware_trials: scale.hardware_trials(),
        ..NasaicConfig::paper(seed)
    };
    let search = Nasaic::new(workload.clone(), specs, config).with_engine_config(engine_config);
    let outcome = search.run();

    let explored: Vec<ScatterPoint> = outcome
        .spec_compliant
        .iter()
        .map(|s| ScatterPoint {
            latency_cycles: s.evaluation.metrics.latency_cycles,
            energy_nj: s.evaluation.metrics.energy_nj,
            area_um2: s.evaluation.metrics.area_um2,
            accuracies: s.evaluation.accuracies.clone(),
            label: s.candidate.accelerator.paper_notation(),
        })
        .collect();
    let best = outcome.best.as_ref().map(|s| ScatterPoint {
        latency_cycles: s.evaluation.metrics.latency_cycles,
        energy_nj: s.evaluation.metrics.energy_nj,
        area_um2: s.evaluation.metrics.area_um2,
        accuracies: s.evaluation.accuracies.clone(),
        label: format!("best {}", s.candidate.accelerator.paper_notation()),
    });

    // Lower bounds: smallest architectures on random accelerator designs,
    // drawn sequentially and metric-evaluated as one parallel batch through
    // the search's own engine, so any designs the search already visited
    // come straight from its caches.
    let engine = search.engine();
    let smallest: Vec<Architecture> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.smallest_architecture())
        .collect();
    let lower_bound_accuracies = engine.accuracies(&smallest);
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1b);
    let accelerators: Vec<_> = (0..scale.hardware_samples() / 2)
        .map(|i| {
            if i % 2 == 0 {
                hardware.sample(&mut rng)
            } else {
                hardware.sample_fully_allocated(&mut rng)
            }
        })
        .collect();
    let lower_bounds: Vec<ScatterPoint> =
        parallel_map(&accelerators, engine.config().threads, |accelerator| {
            let metrics = engine.hardware_metrics(&smallest, accelerator);
            ScatterPoint {
                latency_cycles: metrics.latency_cycles,
                energy_nj: metrics.energy_nj,
                area_um2: metrics.area_um2,
                accuracies: lower_bound_accuracies.clone(),
                label: accelerator.paper_notation(),
            }
        });

    Fig6Panel {
        workload: workload_id,
        specs,
        explored,
        best,
        lower_bounds,
        lower_bound_accuracies,
        episodes: outcome.episodes,
    }
}

/// Run the full figure (all three workloads).
///
/// The three panels are independent searches: they fan out in parallel and
/// assemble in paper order (W1, W2, W3), identical to a serial run.
pub fn run(scale: ExperimentScale, seed: u64) -> Fig6Result {
    let panels = [
        (WorkloadId::W1, seed),
        (WorkloadId::W2, seed + 1),
        (WorkloadId::W3, seed + 2),
    ];
    // Each panel's engine gets an equal share of the machine so the nest
    // (panel fan-out x per-episode batches) does not oversubscribe it.
    let engine_threads = divided_threads(panels.len());
    Fig6Result {
        panels: parallel_map(&panels, panels.len(), |&(workload_id, panel_seed)| {
            run_panel_with_threads(workload_id, scale, panel_seed, engine_threads)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w1_panel_matches_paper_shape() {
        let panel = run_panel(WorkloadId::W1, ExperimentScale::Quick, 31);
        // Every explored solution NASAIC reports satisfies the specs.
        assert!(panel.all_explored_meet_specs());
        assert!(
            !panel.explored.is_empty(),
            "no compliant solutions explored"
        );
        // The best solution clearly beats the smallest-network lower bound.
        let best = panel
            .best_weighted_accuracy()
            .expect("a best solution exists");
        assert!(best > panel.lower_bound_weighted_accuracy() + 0.02);
        // The paper's lower bounds: 78.93% CIFAR-10 and 0.642 IOU.
        assert!((panel.lower_bound_accuracies[0] - 0.7893).abs() < 0.015);
        assert!((panel.lower_bound_accuracies[1] - 0.642).abs() < 0.02);
    }

    #[test]
    fn w3_panel_improves_on_lower_bound() {
        let panel = run_panel(WorkloadId::W3, ExperimentScale::Quick, 33);
        assert!(panel.all_explored_meet_specs());
        if let Some(best) = panel.best_weighted_accuracy() {
            assert!(best > 0.80, "best weighted accuracy {best}");
        }
    }

    #[test]
    fn panel_display_reports_counts() {
        let panel = run_panel(WorkloadId::W3, ExperimentScale::Quick, 35);
        let text = panel.to_string();
        assert!(text.contains("panel W3"));
        assert!(text.contains("compliant solutions"));
    }
}
