//! Table II — accelerator configuration study on the CIFAR-10 workload W3.
//!
//! Thin wrapper around [`crate::studies`] that runs the four accelerator
//! configurations (NAS with maximum resources, single accelerator,
//! homogeneous, heterogeneous) and packages them as the paper's table.

use crate::experiments::ExperimentScale;
use crate::studies::{run_all_studies, AcceleratorStudy, StudyConfig, StudyRow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The full Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Rows in paper order: NAS, Single, Homogeneous, Heterogeneous.
    pub rows: Vec<StudyRow>,
}

impl Table2Result {
    /// Look up a row by study.
    pub fn row(&self, study: AcceleratorStudy) -> Option<&StudyRow> {
        self.rows.iter().find(|r| r.study == study)
    }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — single vs homogeneous vs heterogeneous accelerators (W3)"
        )?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

/// Run Table II at a given scale.
pub fn run(scale: ExperimentScale, seed: u64) -> Table2Result {
    let config = match scale {
        ExperimentScale::Quick => StudyConfig::fast(seed),
        ExperimentScale::Benchmark => StudyConfig::benchmark(seed),
        ExperimentScale::Paper => StudyConfig {
            episodes: scale.episodes(),
            hardware_trials: scale.hardware_trials(),
            ..StudyConfig::fast(seed)
        },
    };
    Table2Result {
        rows: run_all_studies(&config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_shape() {
        let result = run(ExperimentScale::Quick, 51);
        assert_eq!(result.rows.len(), 4);

        let nas = result.row(AcceleratorStudy::NasUnconstrained).unwrap();
        let single = result.row(AcceleratorStudy::SingleAccelerator).unwrap();
        let homo = result.row(AcceleratorStudy::Homogeneous).unwrap();
        let hetero = result.row(AcceleratorStudy::Heterogeneous).unwrap();

        // NAS violates the specs with the highest accuracy; every
        // NASAIC-derived configuration satisfies them.
        assert!(!nas.satisfied);
        assert!(single.satisfied && homo.satisfied && hetero.satisfied);
        assert!(nas.best_accuracy() >= single.best_accuracy());

        // The heterogeneous design's best network beats the single
        // accelerator's, and the paper's ordering
        // single <= homogeneous <= heterogeneous holds up to a small
        // search-noise tolerance.
        assert!(hetero.best_accuracy() + 1e-9 >= single.best_accuracy() - 0.02);
        assert!(hetero.best_accuracy() + 1e-9 >= homo.best_accuracy() - 0.02);
        // The heterogeneous study searches two distinct networks.
        assert_eq!(hetero.architectures.len(), 2);
    }

    #[test]
    fn table2_display_contains_all_rows() {
        let result = run(ExperimentScale::Quick, 53);
        let text = result.to_string();
        assert!(text.contains("NAS"));
        assert!(text.contains("Single Acc."));
        assert!(text.contains("Homo. Acc."));
        assert!(text.contains("Hetero. Acc."));
    }
}
