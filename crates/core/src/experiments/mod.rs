//! Experiment harness regenerating every figure and table of the paper's
//! evaluation (Section V).
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — motivation scatter: successive NAS→ASIC vs HW-aware NAS vs closest-to-spec heuristic vs Monte-Carlo optimum |
//! | [`fig6`] | Fig. 6 — NASAIC exploration clouds, best solutions and lower bounds for W1/W2/W3 |
//! | [`table1`] | Table I — NAS→ASIC vs ASIC→HW-NAS vs NASAIC on the multi-dataset workloads W1 and W2 |
//! | [`table2`] | Table II — single vs homogeneous vs heterogeneous accelerators on W3 |
//! | [`headline`] | the headline claims derived from Table I (latency/energy/area reductions, accuracy deltas) |
//! | [`compare`] | Table I generalised to any scenario and algorithm subset |
//!
//! Each experiment accepts an [`ExperimentScale`] so the same code path can
//! run as a quick smoke test, a benchmark-sized regeneration, or a
//! paper-scale run.

pub mod compare;
pub mod fig1;
pub mod fig6;
pub mod headline;
pub mod table1;
pub mod table2;

use serde::{Deserialize, Serialize};
use std::fmt;

/// How much search effort an experiment regeneration spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Seconds: for unit/integration tests.
    Quick,
    /// Tens of seconds: the default for `cargo bench` regeneration.
    Benchmark,
    /// Paper-scale effort (500 episodes, 10,000 Monte-Carlo runs).
    Paper,
}

impl ExperimentScale {
    /// NASAIC episodes at this scale.
    pub fn episodes(&self) -> usize {
        match self {
            ExperimentScale::Quick => 60,
            ExperimentScale::Benchmark => 200,
            ExperimentScale::Paper => 500,
        }
    }

    /// Hardware-only steps per episode at this scale.
    pub fn hardware_trials(&self) -> usize {
        match self {
            ExperimentScale::Quick => 4,
            ExperimentScale::Benchmark => 6,
            ExperimentScale::Paper => 10,
        }
    }

    /// Monte-Carlo runs at this scale.
    pub fn monte_carlo_runs(&self) -> usize {
        match self {
            ExperimentScale::Quick => 300,
            ExperimentScale::Benchmark => 1500,
            ExperimentScale::Paper => 10_000,
        }
    }

    /// Hardware sweep samples at this scale.
    pub fn hardware_samples(&self) -> usize {
        match self {
            ExperimentScale::Quick => 60,
            ExperimentScale::Benchmark => 250,
            ExperimentScale::Paper => 1000,
        }
    }
}

impl fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentScale::Quick => f.write_str("quick"),
            ExperimentScale::Benchmark => f.write_str("benchmark"),
            ExperimentScale::Paper => f.write_str("paper"),
        }
    }
}

/// One point of a latency/energy/area scatter plot, optionally annotated
/// with the accuracies of the networks behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Latency in cycles.
    pub latency_cycles: f64,
    /// Energy in nJ.
    pub energy_nj: f64,
    /// Area in µm².
    pub area_um2: f64,
    /// Per-task accuracy of the networks of this solution.
    pub accuracies: Vec<f64>,
    /// Free-form label (series name, hardware notation, ...).
    pub label: String,
}

impl fmt::Display for ScatterPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: L={:.3e} E={:.3e} A={:.3e} acc={:?}",
            self.label,
            self.latency_cycles,
            self.energy_nj,
            self.area_um2,
            self.accuracies
                .iter()
                .map(|a| (a * 1e4).round() / 1e2)
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_increase_effort_monotonically() {
        assert!(ExperimentScale::Quick.episodes() < ExperimentScale::Benchmark.episodes());
        assert!(ExperimentScale::Benchmark.episodes() < ExperimentScale::Paper.episodes());
        assert!(
            ExperimentScale::Quick.monte_carlo_runs() < ExperimentScale::Paper.monte_carlo_runs()
        );
        assert_eq!(ExperimentScale::Paper.episodes(), 500);
        assert_eq!(ExperimentScale::Paper.monte_carlo_runs(), 10_000);
        assert_eq!(ExperimentScale::Paper.hardware_trials(), 10);
    }

    #[test]
    fn scatter_point_display() {
        let p = ScatterPoint {
            latency_cycles: 7.77e5,
            energy_nj: 1.43e9,
            area_um2: 2.03e9,
            accuracies: vec![0.9285, 0.8374],
            label: "NASAIC".to_string(),
        };
        let text = p.to_string();
        assert!(text.contains("NASAIC") && text.contains("L="));
    }

    #[test]
    fn scale_display_names() {
        assert_eq!(ExperimentScale::Quick.to_string(), "quick");
        assert_eq!(ExperimentScale::Paper.to_string(), "paper");
    }
}
