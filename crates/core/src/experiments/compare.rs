//! Scenario-generic algorithm comparison: Table I for *any* scenario.
//!
//! The paper's Table I compares NASAIC against the successive baselines on
//! the fixed workloads W1/W2.  This harness generalises that comparison to
//! any [`Scenario`] (registry built-ins or user configs) and any algorithm
//! subset, running every algorithm over **one shared
//! [`EvalEngine`](crate::engine::EvalEngine)** so revisited architectures
//! and hardware designs are paid for once across the whole comparison.

use crate::scenario::report::RunReport;
use crate::scenario::value::{self, ConfigValue};
use crate::scenario::{Algorithm, Scenario};
use std::fmt;

/// The result of comparing several algorithms on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmComparison {
    /// The scenario every algorithm ran on.
    pub scenario: Scenario,
    /// One report per algorithm, in run order.
    pub reports: Vec<RunReport>,
}

/// Run every algorithm in `algorithms` on the scenario, sharing one
/// evaluation engine (results are bit-identical to isolated runs; only
/// the wall-clock changes).
pub fn run(scenario: &Scenario, algorithms: &[Algorithm]) -> AlgorithmComparison {
    let engine = scenario.engine();
    let reports = algorithms
        .iter()
        .map(|&algorithm| scenario.run_report_with_engine(algorithm, &engine))
        .collect();
    AlgorithmComparison {
        scenario: scenario.clone(),
        reports,
    }
}

impl AlgorithmComparison {
    /// The algorithm whose best spec-compliant solution has the highest
    /// weighted accuracy, if any algorithm found one.
    pub fn winner(&self) -> Option<&RunReport> {
        self.reports
            .iter()
            .filter(|r| r.best.is_some())
            .max_by(|a, b| {
                let acc = |r: &RunReport| {
                    r.best
                        .as_ref()
                        .map(|b| b.weighted_accuracy)
                        .unwrap_or(f64::MIN)
                };
                acc(a).partial_cmp(&acc(b)).expect("accuracies are finite")
            })
    }

    /// The comparison as CSV (header + one row per algorithm).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(RunReport::CSV_HEADER);
        for report in &self.reports {
            out.push('\n');
            out.push_str(&report.to_csv_row());
        }
        out
    }

    /// The comparison as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut root = ConfigValue::table();
        root.insert("scenario", ConfigValue::Str(self.scenario.name.clone()));
        root.insert(
            "runs",
            ConfigValue::Array(self.reports.iter().map(|r| r.to_value()).collect()),
        );
        value::to_json(&root)
    }
}

impl fmt::Display for AlgorithmComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "comparison on scenario `{}`:", self.scenario.name)?;
        for report in &self.reports {
            let best = match &report.best {
                Some(b) => format!("best {:.4}", b.weighted_accuracy),
                None => "no compliant solution".to_string(),
            };
            writeln!(
                f,
                "  {:<16} {:>6} explored, {:>4} compliant, {} ({} ms)",
                report.algorithm.name(),
                report.explored,
                report.spec_compliant,
                best,
                report.wall_ms
            )?;
        }
        match self.winner() {
            Some(winner) => write!(f, "winner: {}", winner.algorithm),
            None => write!(f, "winner: none (no algorithm met the specs)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    #[test]
    fn compares_algorithms_over_a_shared_engine() {
        let mut scenario = registry::get("w3").unwrap();
        scenario.search.episodes = 5;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
        scenario.seed = 3;
        let comparison = run(
            &scenario,
            &[
                Algorithm::Nasaic,
                Algorithm::MonteCarlo,
                Algorithm::HillClimb,
            ],
        );
        assert_eq!(comparison.reports.len(), 3);
        assert_eq!(comparison.reports[0].algorithm, Algorithm::Nasaic);
        // CSV has a header plus one row per algorithm.
        assert_eq!(comparison.to_csv().lines().count(), 4);
        // JSON parses back with one entry per run.
        let parsed = value::parse_json(&comparison.to_json()).unwrap();
        assert_eq!(parsed.get("runs").unwrap().as_array().unwrap().len(), 3);
        let text = comparison.to_string();
        assert!(text.contains("monte-carlo"), "{text}");
    }

    #[test]
    fn shared_engine_results_match_isolated_runs() {
        // The engine is observationally invisible: running Monte-Carlo
        // after NASAIC on a warm shared cache must give the same outcome
        // as running it alone.
        let mut scenario = registry::get("w3").unwrap();
        scenario.search.episodes = 4;
        scenario.search.hardware_trials = 2;
        scenario.search.bound_samples = 4;
        scenario.seed = 9;
        let comparison = run(&scenario, &[Algorithm::Nasaic, Algorithm::MonteCarlo]);
        let isolated =
            scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &scenario.engine());
        let shared = &comparison.reports[1];
        assert_eq!(
            shared.best.as_ref().map(|b| b.weighted_accuracy),
            isolated.best_weighted_accuracy()
        );
        assert_eq!(shared.explored, isolated.explored.len());
    }
}
