//! The headline claims of the paper, derived from Table I.
//!
//! The abstract summarises the evaluation as: compared with successive NAS
//! and ASIC design optimisation (which violates the specs), NASAIC meets
//! every spec with 17.77 %, 2.49× and 2.32× reductions on latency, energy
//! and area and 0.76 % accuracy loss (W1); compared with hardware-aware NAS
//! on a fixed ASIC design, NASAIC achieves 3.65 % higher accuracy (W2,
//! STL-10).  This module recomputes those derived quantities from a
//! [`Table1Result`] so integration tests and benches can check the *shape*
//! (who wins, in which direction) rather than the absolute numbers.

use crate::experiments::table1::{Approach, Table1Result};
use crate::spec::WorkloadId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Derived headline quantities for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineClaims {
    /// Workload the claims are derived from.
    pub workload: WorkloadId,
    /// `true` when every NASAIC metric satisfies its spec while NAS→ASIC
    /// violates at least one.
    pub nasaic_feasible_nas_not: bool,
    /// Latency reduction of NASAIC vs NAS→ASIC as a fraction
    /// (paper: 17.77 % on W1).
    pub latency_reduction: f64,
    /// Energy reduction factor of NASAIC vs NAS→ASIC (paper: 2.49× on W1).
    pub energy_reduction_factor: f64,
    /// Area reduction factor of NASAIC vs NAS→ASIC (paper: 2.32× on W1).
    pub area_reduction_factor: f64,
    /// Average accuracy loss of NASAIC vs unconstrained NAS
    /// (paper: 0.76 % on W1, 1.17 % on W2).
    pub accuracy_loss_vs_nas: f64,
    /// Accuracy gain of NASAIC vs ASIC→HW-NAS, averaged over datasets
    /// (paper: up to 3.65 % on W2's STL-10).
    pub accuracy_gain_vs_hw_nas: f64,
}

impl HeadlineClaims {
    /// Derive the claims for one workload from a Table I result.
    ///
    /// Returns `None` when the table is missing the NAS→ASIC or NASAIC row
    /// for the workload.
    pub fn derive(table: &Table1Result, workload: WorkloadId) -> Option<Self> {
        let nas = table.row(workload, Approach::NasThenAsic)?;
        let nasaic = table.row(workload, Approach::Nasaic)?;
        let hw_nas = table.row(workload, Approach::AsicThenHwNas);
        Some(Self {
            workload,
            nasaic_feasible_nas_not: nasaic.satisfied && !nas.satisfied,
            latency_reduction: 1.0 - nasaic.latency_cycles / nas.latency_cycles,
            energy_reduction_factor: nas.energy_nj / nasaic.energy_nj,
            area_reduction_factor: nas.area_um2 / nasaic.area_um2,
            accuracy_loss_vs_nas: nas.average_accuracy() - nasaic.average_accuracy(),
            accuracy_gain_vs_hw_nas: hw_nas
                .map(|h| nasaic.average_accuracy() - h.average_accuracy())
                .unwrap_or(0.0),
        })
    }

    /// The qualitative shape the paper reports: NASAIC is feasible where
    /// NAS→ASIC is not, saves energy and area, and loses only a small
    /// amount of accuracy relative to unconstrained NAS.
    pub fn matches_paper_shape(&self) -> bool {
        self.nasaic_feasible_nas_not
            && self.energy_reduction_factor > 1.0
            && self.area_reduction_factor > 1.0
            && self.accuracy_loss_vs_nas < 0.06
            && self.accuracy_gain_vs_hw_nas > -0.02
    }
}

impl fmt::Display for HeadlineClaims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline claims for {}:", self.workload)?;
        writeln!(
            f,
            "  NASAIC feasible while NAS->ASIC violates specs: {}",
            self.nasaic_feasible_nas_not
        )?;
        writeln!(
            f,
            "  latency reduction {:.2}%, energy reduction {:.2}x, area reduction {:.2}x",
            self.latency_reduction * 100.0,
            self.energy_reduction_factor,
            self.area_reduction_factor
        )?;
        writeln!(
            f,
            "  accuracy loss vs NAS {:.2}%, accuracy gain vs ASIC->HW-NAS {:.2}%",
            self.accuracy_loss_vs_nas * 100.0,
            self.accuracy_gain_vs_hw_nas * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::{Table1Result, Table1Row};

    fn paper_table() -> Table1Result {
        // The W1 numbers exactly as printed in Table I of the paper.
        Table1Result {
            rows: vec![
                Table1Row {
                    workload: WorkloadId::W1,
                    approach: Approach::NasThenAsic,
                    hardware: "<dla, 2112, 48> + <shi, 1984, 16>".to_string(),
                    datasets: vec!["CIFAR-10".to_string(), "Nuclei".to_string()],
                    accuracies: vec![0.9417, 0.8394],
                    latency_cycles: 9.45e5,
                    energy_nj: 3.56e9,
                    area_um2: 4.71e9,
                    satisfied: false,
                },
                Table1Row {
                    workload: WorkloadId::W1,
                    approach: Approach::AsicThenHwNas,
                    hardware: "<dla, 1088, 24> + <shi, 2368, 40>".to_string(),
                    datasets: vec!["CIFAR-10".to_string(), "Nuclei".to_string()],
                    accuracies: vec![0.9198, 0.8372],
                    latency_cycles: 5.8e5,
                    energy_nj: 1.94e9,
                    area_um2: 3.82e9,
                    satisfied: true,
                },
                Table1Row {
                    workload: WorkloadId::W1,
                    approach: Approach::Nasaic,
                    hardware: "<dla, 576, 56> + <shi, 1792, 8>".to_string(),
                    datasets: vec!["CIFAR-10".to_string(), "Nuclei".to_string()],
                    accuracies: vec![0.9285, 0.8374],
                    latency_cycles: 7.77e5,
                    energy_nj: 1.43e9,
                    area_um2: 2.03e9,
                    satisfied: true,
                },
            ],
        }
    }

    #[test]
    fn derivation_reproduces_the_papers_w1_numbers() {
        let claims = HeadlineClaims::derive(&paper_table(), WorkloadId::W1).unwrap();
        assert!(claims.nasaic_feasible_nas_not);
        // 1 - 7.77/9.45 = 17.77%
        assert!((claims.latency_reduction - 0.1777).abs() < 0.002);
        // 3.56 / 1.43 = 2.49x
        assert!((claims.energy_reduction_factor - 2.49).abs() < 0.01);
        // 4.71 / 2.03 = 2.32x
        assert!((claims.area_reduction_factor - 2.32).abs() < 0.01);
        // ((94.17 - 92.85) + (83.94 - 83.74)) / 2 = 0.76%
        assert!((claims.accuracy_loss_vs_nas - 0.0076).abs() < 0.0005);
        assert!(claims.matches_paper_shape());
    }

    #[test]
    fn missing_rows_yield_none() {
        let table = Table1Result { rows: vec![] };
        assert!(HeadlineClaims::derive(&table, WorkloadId::W1).is_none());
    }

    #[test]
    fn display_mentions_reductions() {
        let claims = HeadlineClaims::derive(&paper_table(), WorkloadId::W1).unwrap();
        let text = claims.to_string();
        assert!(text.contains("energy reduction"));
        assert!(text.contains("accuracy loss"));
    }
}
