//! Table I — NAS→ASIC vs ASIC→HW-NAS vs NASAIC on the multi-dataset
//! workloads W1 and W2.

use crate::baselines::{nas_then_asic::least_violating, AsicThenHwNas, NasThenAsic};
use crate::engine::{parallel_map, pool::divided_threads, EngineConfig, EvalEngine};
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::experiments::ExperimentScale;
use crate::log::ExploredSolution;
use crate::search::{Nasaic, NasaicConfig};
use crate::spec::{DesignSpecs, WorkloadId};
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The approach a Table I row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Successive NAS then brute-force ASIC exploration.
    NasThenAsic,
    /// Monte-Carlo ASIC selection then hardware-aware NAS.
    AsicThenHwNas,
    /// The proposed co-exploration.
    Nasaic,
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Approach::NasThenAsic => f.write_str("NAS->ASIC"),
            Approach::AsicThenHwNas => f.write_str("ASIC->HW-NAS"),
            Approach::Nasaic => f.write_str("NASAIC"),
        }
    }
}

/// One row of Table I: one approach on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload (W1 or W2).
    pub workload: WorkloadId,
    /// Approach.
    pub approach: Approach,
    /// Hardware design in the paper's notation.
    pub hardware: String,
    /// Dataset names, in task order.
    pub datasets: Vec<String>,
    /// Accuracy per dataset.
    pub accuracies: Vec<f64>,
    /// Latency in cycles.
    pub latency_cycles: f64,
    /// Energy in nJ.
    pub energy_nj: f64,
    /// Area in µm².
    pub area_um2: f64,
    /// `true` when all design specs are satisfied.
    pub satisfied: bool,
}

impl Table1Row {
    /// Average accuracy over the row's datasets.
    pub fn average_accuracy(&self) -> f64 {
        self.accuracies.iter().sum::<f64>() / self.accuracies.len().max(1) as f64
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let accs: Vec<String> = self
            .datasets
            .iter()
            .zip(&self.accuracies)
            .map(|(d, a)| format!("{d} {:.2}%", a * 100.0))
            .collect();
        write!(
            f,
            "{} {:<13} | {:<42} | {} | L {:.3e} | E {:.3e} | A {:.3e} | {}",
            self.workload,
            self.approach.to_string(),
            self.hardware,
            accs.join(", "),
            self.latency_cycles,
            self.energy_nj,
            self.area_um2,
            if self.satisfied {
                "meets specs"
            } else {
                "violates specs"
            }
        )
    }
}

/// The full Table I: rows for both workloads and all three approaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows in paper order (W1 then W2, each NAS→ASIC / ASIC→HW-NAS /
    /// NASAIC).
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Look up a row.
    pub fn row(&self, workload: WorkloadId, approach: Approach) -> Option<&Table1Row> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.approach == approach)
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — comparison on multi-dataset workloads")?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

fn dataset_names(workload: &Workload) -> Vec<String> {
    workload
        .tasks
        .iter()
        .map(|t| t.backbone.dataset().to_string())
        .collect()
}

fn row_from_solution(
    workload_id: WorkloadId,
    approach: Approach,
    datasets: &[String],
    solution: &ExploredSolution,
) -> Table1Row {
    Table1Row {
        workload: workload_id,
        approach,
        hardware: solution.candidate.accelerator.paper_notation(),
        datasets: datasets.to_vec(),
        accuracies: solution.evaluation.accuracies.clone(),
        latency_cycles: solution.evaluation.metrics.latency_cycles,
        energy_nj: solution.evaluation.metrics.energy_nj,
        area_um2: solution.evaluation.metrics.area_um2,
        satisfied: solution.evaluation.meets_specs(),
    }
}

/// Run Table I for one workload.
///
/// The three approaches share one [`EvalEngine`], so e.g. the hardware
/// sweeps of NAS→ASIC and ASIC→HW-NAS reuse each other's cached cost
/// tables where their samples overlap.
pub fn run_workload(workload_id: WorkloadId, scale: ExperimentScale, seed: u64) -> Vec<Table1Row> {
    run_workload_with_threads(workload_id, scale, seed, 0)
}

/// [`run_workload`] with an explicit engine worker ceiling (`0` = all
/// cores); the parallel table fan-out passes each workload its share of
/// the machine.
pub fn run_workload_with_threads(
    workload_id: WorkloadId,
    scale: ExperimentScale,
    seed: u64,
    engine_threads: usize,
) -> Vec<Table1Row> {
    let engine_config = EngineConfig {
        threads: engine_threads,
        ..EngineConfig::default()
    };
    let workload = Workload::for_id(workload_id);
    let specs = DesignSpecs::for_workload(workload_id);
    let engine = EvalEngine::with_config(
        Evaluator::new(&workload, specs, AccuracyOracle::default()),
        engine_config,
    );
    let hardware = HardwareSpace::paper_default(2);
    let datasets = dataset_names(&workload);
    let mut rows = Vec::with_capacity(3);

    // NAS -> ASIC.
    let nas_baseline = NasThenAsic {
        nas_episodes: scale.episodes(),
        hardware_samples: scale.hardware_samples(),
        seed,
    };
    let (sweep, representative) =
        nas_baseline.run_with_engine(&workload, specs, &hardware, &engine);
    let representative = representative.or_else(|| least_violating(&sweep, &specs));
    if let Some(solution) = representative {
        rows.push(row_from_solution(
            workload_id,
            Approach::NasThenAsic,
            &datasets,
            &solution,
        ));
    }

    // ASIC -> HW-NAS.
    let hwnas_baseline = AsicThenHwNas {
        monte_carlo_runs: scale.monte_carlo_runs() / 2,
        nas_episodes: scale.episodes(),
        rho: 10.0,
        seed: seed ^ 0x51,
    };
    let (_, hwnas_outcome) = hwnas_baseline.run_with_engine(&workload, specs, &hardware, &engine);
    if let Some(best) = hwnas_outcome
        .best
        .clone()
        .or_else(|| least_violating(&hwnas_outcome, &specs))
    {
        rows.push(row_from_solution(
            workload_id,
            Approach::AsicThenHwNas,
            &datasets,
            &best,
        ));
    }

    // NASAIC.
    let config = NasaicConfig {
        episodes: scale.episodes(),
        hardware_trials: scale.hardware_trials(),
        ..NasaicConfig::paper(seed ^ 0x99)
    };
    let outcome = Nasaic::new(workload.clone(), specs, config)
        .with_engine_config(engine_config)
        .run();
    if let Some(best) = outcome.best {
        rows.push(row_from_solution(
            workload_id,
            Approach::Nasaic,
            &datasets,
            &best,
        ));
    }
    rows
}

/// Run the full Table I (W1 and W2).
///
/// The two workloads are independent searches; they fan out in parallel
/// and assemble in paper order, so the table is identical to a serial run.
pub fn run(scale: ExperimentScale, seed: u64) -> Table1Result {
    let panels = [(WorkloadId::W1, seed), (WorkloadId::W2, seed + 100)];
    // Split the machine between the two workloads' engines (see fig6).
    let engine_threads = divided_threads(panels.len());
    let rows = parallel_map(&panels, panels.len(), |&(workload_id, panel_seed)| {
        run_workload_with_threads(workload_id, scale, panel_seed, engine_threads)
    });
    Table1Result {
        rows: rows.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_w1_matches_paper_shape() {
        let rows = run_workload(WorkloadId::W1, ExperimentScale::Quick, 41);
        let result = Table1Result { rows };
        let nas = result
            .row(WorkloadId::W1, Approach::NasThenAsic)
            .expect("NAS row");
        let nasaic = result
            .row(WorkloadId::W1, Approach::Nasaic)
            .expect("NASAIC row");
        // NAS->ASIC violates the specs, NASAIC satisfies them.
        assert!(!nas.satisfied);
        assert!(nasaic.satisfied);
        // NASAIC's accuracy loss vs unconstrained NAS stays small (the paper
        // reports 0.76% on W1; allow a few percent for the quick scale).
        assert!(nas.average_accuracy() - nasaic.average_accuracy() < 0.06);
        // NASAIC reduces latency, energy and area relative to NAS->ASIC's
        // (infeasible) design.
        assert!(nasaic.energy_nj < nas.energy_nj);
        assert!(nasaic.area_um2 < nas.area_um2);
        if let Some(hwnas) = result.row(WorkloadId::W1, Approach::AsicThenHwNas) {
            assert!(hwnas.satisfied);
            // Co-exploration is at least as accurate as HW-aware NAS (a
            // small tolerance absorbs quick-scale search noise).
            assert!(nasaic.average_accuracy() >= hwnas.average_accuracy() - 0.025);
        }
    }

    #[test]
    fn table1_display_prints_all_rows() {
        let rows = run_workload(WorkloadId::W1, ExperimentScale::Quick, 43);
        let result = Table1Result { rows };
        let text = result.to_string();
        assert!(text.contains("NAS->ASIC"));
        assert!(text.contains("NASAIC"));
        assert!(text.contains("CIFAR-10"));
    }
}
