//! The optimizer selector (paper Fig. 4, component ②).
//!
//! The selector controls two switches: `S_A` (architecture exploration) and
//! `S_H` (hardware exploration).  NASAIC repeats, for each of `beta`
//! episodes:
//!
//! 1. one step with both switches closed (`S_A = S_H = 1`) — a fresh pair
//!    of architectures and a hardware design;
//! 2. `phi` steps with the architecture switch open (`S_A = 0`) — the
//!    previously identified architectures are kept and only hardware
//!    designs are explored; accuracy is not part of the reward for these
//!    steps.
//!
//! Because hardware evaluation is much cheaper than training, the selector
//! also performs **early pruning**: if none of the `1 + phi` hardware
//!    designs of an episode yields a feasible (spec-satisfiable) design, the
//! expensive accuracy evaluation ("training") of that episode is skipped.

use serde::{Deserialize, Serialize};

/// The state of the two exploration switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchState {
    /// Architecture exploration switch `S_A`.
    pub architecture: bool,
    /// Hardware exploration switch `S_H`.
    pub hardware: bool,
}

impl SwitchState {
    /// Both switches closed: conventional co-exploration step.
    pub fn joint() -> Self {
        Self {
            architecture: true,
            hardware: true,
        }
    }

    /// Architecture fixed, hardware explored.
    pub fn hardware_only() -> Self {
        Self {
            architecture: false,
            hardware: true,
        }
    }

    /// Hardware fixed, architecture explored (conventional NAS, used by the
    /// ASIC→HW-NAS baseline).
    pub fn architecture_only() -> Self {
        Self {
            architecture: true,
            hardware: false,
        }
    }
}

/// The per-episode plan produced by the optimizer selector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodePlan {
    /// Switch states of the episode's steps, in order: one joint step
    /// followed by `phi` hardware-only steps.
    pub steps: Vec<SwitchState>,
}

impl EpisodePlan {
    /// Number of steps in the episode.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the plan has no steps (never produced by the selector).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The optimizer selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerSelector {
    /// Number of hardware-only exploration steps per episode (`phi`).
    pub hardware_trials: usize,
}

impl OptimizerSelector {
    /// Create a selector with `phi` hardware-only steps per episode.
    pub fn new(hardware_trials: usize) -> Self {
        Self { hardware_trials }
    }

    /// The paper's setting: `phi = 10`.
    pub fn paper() -> Self {
        Self::new(10)
    }

    /// Plan one episode: a joint step followed by `phi` hardware-only
    /// steps.
    pub fn plan_episode(&self) -> EpisodePlan {
        let mut steps = vec![SwitchState::joint()];
        steps.extend(std::iter::repeat_n(
            SwitchState::hardware_only(),
            self.hardware_trials,
        ));
        EpisodePlan { steps }
    }

    /// Early-pruning decision: the accuracy evaluation ("training") runs
    /// only if at least one of the episode's hardware designs was feasible
    /// with respect to the design specs.
    pub fn should_train(&self, any_design_meets_specs: bool) -> bool {
        any_design_meets_specs
    }
}

impl Default for OptimizerSelector {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_selector_plans_eleven_steps() {
        let plan = OptimizerSelector::paper().plan_episode();
        assert_eq!(plan.len(), 11);
        assert!(!plan.is_empty());
        assert_eq!(plan.steps[0], SwitchState::joint());
        for step in &plan.steps[1..] {
            assert_eq!(*step, SwitchState::hardware_only());
        }
    }

    #[test]
    fn zero_trials_selector_only_does_joint_steps() {
        let plan = OptimizerSelector::new(0).plan_episode();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.steps[0], SwitchState::joint());
    }

    #[test]
    fn early_pruning_skips_training_without_feasible_designs() {
        let selector = OptimizerSelector::paper();
        assert!(!selector.should_train(false));
        assert!(selector.should_train(true));
    }

    #[test]
    fn switch_states_cover_paper_modes() {
        assert!(SwitchState::joint().architecture && SwitchState::joint().hardware);
        assert!(!SwitchState::hardware_only().architecture);
        assert!(SwitchState::architecture_only().architecture);
        assert!(!SwitchState::architecture_only().hardware);
    }
}
