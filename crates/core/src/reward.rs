//! The controller reward of Eq. 4.

use crate::penalty::Penalty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The reward `R(D, P) = weighted(D) - rho * P` fed back to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reward {
    /// Combined (weighted) accuracy of the sampled architectures.
    pub weighted_accuracy: f64,
    /// Design-spec penalty.
    pub penalty: f64,
    /// Penalty scaling factor `rho`.
    pub rho: f64,
}

impl Reward {
    /// Compose a reward from a weighted accuracy and a penalty (Eq. 4).
    pub fn new(weighted_accuracy: f64, penalty: &Penalty, rho: f64) -> Self {
        Self {
            weighted_accuracy,
            penalty: penalty.total(),
            rho,
        }
    }

    /// A reward for hardware-only exploration steps: the paper ignores the
    /// accuracy term when only the hardware switch is open, so the reward
    /// is simply `-rho * P`.
    pub fn hardware_only(penalty: &Penalty, rho: f64) -> Self {
        Self {
            weighted_accuracy: 0.0,
            penalty: penalty.total(),
            rho,
        }
    }

    /// The scalar reward value.
    pub fn value(&self) -> f64 {
        self.weighted_accuracy - self.rho * self.penalty
    }
}

impl fmt::Display for Reward {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R = {:.4} (acc {:.4}, rho*P {:.4})",
            self.value(),
            self.weighted_accuracy,
            self.rho * self.penalty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::PenaltyBounds;
    use crate::spec::DesignSpecs;
    use nasaic_cost::HardwareMetrics;

    fn penalty(metrics: HardwareMetrics) -> Penalty {
        let specs = DesignSpecs::new(100.0, 100.0, 100.0);
        let bounds = PenaltyBounds::from_specs(&specs, 2.0);
        Penalty::compute(&metrics, &specs, &bounds)
    }

    #[test]
    fn zero_penalty_reward_equals_accuracy() {
        let p = penalty(HardwareMetrics::new(50.0, 50.0, 50.0));
        let r = Reward::new(0.93, &p, 10.0);
        assert_eq!(r.value(), 0.93);
    }

    #[test]
    fn violations_reduce_reward_by_rho_times_penalty() {
        let p = penalty(HardwareMetrics::new(150.0, 50.0, 50.0));
        let r = Reward::new(0.93, &p, 10.0);
        assert!((r.value() - (0.93 - 10.0 * 0.5)).abs() < 1e-12);
        assert!(r.value() < 0.0);
    }

    #[test]
    fn hardware_only_reward_ignores_accuracy() {
        let p = penalty(HardwareMetrics::new(150.0, 50.0, 50.0));
        let r = Reward::hardware_only(&p, 10.0);
        assert_eq!(r.weighted_accuracy, 0.0);
        assert!((r.value() + 5.0).abs() < 1e-12);
    }

    #[test]
    fn spec_compliant_solutions_always_outrank_violating_ones() {
        // With rho = 10 and accuracy in [0, 1], any violation of at least
        // 10% of the normalised range drops the reward below the worst
        // possible compliant reward.
        let compliant = Reward::new(0.0, &penalty(HardwareMetrics::new(1.0, 1.0, 1.0)), 10.0);
        let violating = Reward::new(1.0, &penalty(HardwareMetrics::new(150.0, 50.0, 50.0)), 10.0);
        assert!(compliant.value() > violating.value());
    }

    #[test]
    fn display_mentions_components() {
        let p = penalty(HardwareMetrics::new(50.0, 50.0, 50.0));
        assert!(Reward::new(0.9, &p, 10.0).to_string().contains("R ="));
    }
}
