//! Telemetry glue for the core search pipeline.
//!
//! The [`nasaic_telemetry`] crate owns the primitives (counters, gauges,
//! log-scale histograms, timer spans); this module owns the *names* — the
//! metric catalogue in `docs/observability.md` — and the pieces that need
//! core types:
//!
//! * cached handles for the hot-path wall-time histograms
//!   ([`eval_accuracy_wall`], [`eval_cost_model_wall`],
//!   [`eval_sched_solve_wall`], [`controller_wall`],
//!   [`checkpoint_encode_wall`], [`eval_candidate_wall`]) plus the
//!   [`maybe_time`] helper that makes a disabled site cost one relaxed
//!   load;
//! * [`MetricsObserver`] — a passive [`SearchObserver`] that translates
//!   the existing event stream into per-phase wall time, episode counters
//!   and an episodes/s gauge, so the six drivers are instrumented without
//!   touching their internals (and with bit-identical outcomes by the
//!   observer contract);
//! * [`snapshot_to_value`] — the JSON form of a registry snapshot (the
//!   `show metrics` response and `nasaic profile --format json`);
//! * [`ProfileBreakdown`] — the hierarchical wall-time attribution behind
//!   `nasaic profile`.

use crate::algorithm::{SearchEvent, SearchObserver};
use crate::scenario::value::ConfigValue;
use nasaic_telemetry::{self as telemetry, Histogram, MetricSnapshot, MetricValue, TimerSpan};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

macro_rules! global_histogram {
    ($(#[$doc:meta])* $name:ident, $metric:literal) => {
        $(#[$doc])*
        pub fn $name() -> &'static Arc<Histogram> {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| telemetry::global().histogram($metric, &[]))
        }
    };
}

global_histogram!(
    /// Wall time of one accuracy-oracle query (`nasaic_eval_accuracy_wall_ns`).
    eval_accuracy_wall,
    "nasaic_eval_accuracy_wall_ns"
);
global_histogram!(
    /// Wall time of one cost-table assembly (`nasaic_eval_cost_model_wall_ns`).
    eval_cost_model_wall,
    "nasaic_eval_cost_model_wall_ns"
);
global_histogram!(
    /// Wall time of one HAP solve (`nasaic_eval_sched_solve_wall_ns`).
    eval_sched_solve_wall,
    "nasaic_eval_sched_solve_wall_ns"
);
global_histogram!(
    /// Wall time of one controller interaction — a sample or a feedback
    /// update (`nasaic_controller_wall_ns`).
    controller_wall,
    "nasaic_controller_wall_ns"
);
global_histogram!(
    /// Wall time of building + persisting one checkpoint
    /// (`nasaic_checkpoint_encode_wall_ns`).
    checkpoint_encode_wall,
    "nasaic_checkpoint_encode_wall_ns"
);
global_histogram!(
    /// End-to-end wall time of evaluating one candidate through the
    /// engine, cache hits included (`nasaic_eval_candidate_wall_ns`).
    eval_candidate_wall,
    "nasaic_eval_candidate_wall_ns"
);

global_histogram!(
    /// Size of one batch handed to the engine (`nasaic_eval_batch_size`).
    eval_batch_size,
    "nasaic_eval_batch_size"
);

/// Evaluations the batch de-duplication suppressed
/// (`nasaic_eval_dedup_saved_total`).
pub fn eval_dedup_saved() -> &'static Arc<nasaic_telemetry::Counter> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| telemetry::global().counter("nasaic_eval_dedup_saved_total", &[]))
}

/// Start a span on `histogram` when telemetry is enabled; `None` (which
/// drops for free) otherwise.  The disabled path is one relaxed load —
/// no `Instant::now` syscall.
#[inline]
pub fn maybe_time(histogram: fn() -> &'static Arc<Histogram>) -> Option<TimerSpan> {
    if telemetry::enabled() {
        Some(histogram().time())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// MetricsObserver
// ---------------------------------------------------------------------------

/// A passive [`SearchObserver`] recording driver-level metrics from the
/// event stream: per-phase wall time
/// (`nasaic_search_phase_wall_ns{phase=…}`), episode / incumbent /
/// checkpoint counters, search wall time and an episodes/s gauge.
///
/// Because it only *listens*, the observer contract (bit-identical
/// outcomes) holds for all six drivers without touching their internals.
/// One instance observes one run; `MulticastObserver` composes it with
/// tracing or streaming observers.
#[derive(Debug)]
pub struct MetricsObserver {
    started: Instant,
    phase_starts: Mutex<HashMap<String, Instant>>,
}

impl MetricsObserver {
    /// An observer whose search clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            phase_starts: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchObserver for MetricsObserver {
    fn on_event(&self, event: &SearchEvent) {
        if !telemetry::enabled() {
            return;
        }
        let registry = telemetry::global();
        match event {
            SearchEvent::PhaseStarted { phase, .. } => {
                self.phase_starts
                    .lock()
                    .expect("phase clock lock")
                    .insert(phase.clone(), Instant::now());
            }
            SearchEvent::PhaseFinished { phase, .. } => {
                let started = self
                    .phase_starts
                    .lock()
                    .expect("phase clock lock")
                    .remove(phase);
                if let Some(started) = started {
                    registry
                        .histogram("nasaic_search_phase_wall_ns", &[("phase", phase)])
                        .record(started.elapsed().as_nanos() as u64);
                }
            }
            SearchEvent::EpisodeEvaluated { .. } => {
                registry.counter("nasaic_search_episodes_total", &[]).inc();
            }
            SearchEvent::NewIncumbent { .. } => {
                registry
                    .counter("nasaic_search_incumbents_total", &[])
                    .inc();
            }
            SearchEvent::CheckpointSaved { .. } => {
                registry
                    .counter("nasaic_search_checkpoints_total", &[])
                    .inc();
            }
            SearchEvent::SearchFinished { episodes, .. } => {
                let elapsed = self.started.elapsed();
                registry
                    .histogram("nasaic_search_wall_ns", &[])
                    .record(elapsed.as_nanos() as u64);
                let secs = elapsed.as_secs_f64();
                if secs > 0.0 {
                    registry
                        .gauge("nasaic_search_episodes_per_s", &[])
                        .set(*episodes as f64 / secs);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

/// A registry snapshot as a [`ConfigValue`] array — one table per metric
/// with `name`, a `labels` table (omitted when empty), `kind`, and either
/// `value` (counter/gauge) or the histogram summary fields.
pub fn snapshot_to_value(snapshots: &[MetricSnapshot]) -> ConfigValue {
    let entries = snapshots
        .iter()
        .map(|snap| {
            let mut entry = ConfigValue::table();
            entry.insert("name", ConfigValue::Str(snap.name.clone()));
            if !snap.labels.is_empty() {
                let mut labels = ConfigValue::table();
                for (key, value) in &snap.labels {
                    labels.insert(key, ConfigValue::Str(value.clone()));
                }
                entry.insert("labels", labels);
            }
            match &snap.value {
                MetricValue::Counter(v) => {
                    entry.insert("kind", ConfigValue::Str("counter".into()));
                    entry.insert("value", ConfigValue::Integer(*v as i64));
                }
                MetricValue::Gauge(v) => {
                    entry.insert("kind", ConfigValue::Str("gauge".into()));
                    entry.insert("value", ConfigValue::Float(*v));
                }
                MetricValue::Histogram(h) => {
                    entry.insert("kind", ConfigValue::Str("histogram".into()));
                    entry.insert("count", ConfigValue::Integer(h.count as i64));
                    entry.insert("sum", ConfigValue::Integer(h.sum as i64));
                    entry.insert("mean", ConfigValue::Float(h.mean));
                    entry.insert("p50", ConfigValue::Float(h.p50));
                    entry.insert("p90", ConfigValue::Float(h.p90));
                    entry.insert("p99", ConfigValue::Float(h.p99));
                }
            }
            entry
        })
        .collect();
    ConfigValue::Array(entries)
}

// ---------------------------------------------------------------------------
// Profile breakdown
// ---------------------------------------------------------------------------

/// One attributed component of a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileComponent {
    /// Component name (`evaluation/accuracy-proxy`, `controller`, …).
    pub name: String,
    /// Wall time attributed to the component, in milliseconds.
    pub wall_ms: f64,
    /// Spans recorded (0 for the synthetic `other` row).
    pub count: u64,
}

/// The hierarchical wall-time attribution `nasaic profile` prints: where
/// a run's measured wall went, split by pipeline stage.
///
/// Components are *leaf* spans (the accuracy oracle, cost-table assembly,
/// HAP solve, controller, checkpoint encode), so they never double-count;
/// `coverage` is their sum over the measured wall.  The profile runs
/// single-threaded so attribution sums are comparable to wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBreakdown {
    /// Measured wall time of the profiled run, in milliseconds.
    pub wall_ms: f64,
    /// Attributed components, largest first, plus a final `other` row for
    /// the unattributed remainder.
    pub components: Vec<ProfileComponent>,
    /// Fraction of the wall covered by attributed (non-`other`)
    /// components.
    pub coverage: f64,
}

impl ProfileBreakdown {
    /// Attribute `wall_ms` of a just-finished run from the global
    /// registry's leaf spans.  Call with telemetry enabled and the
    /// registry reset immediately before the run.
    pub fn collect(wall_ms: f64) -> Self {
        let leaves: [(&str, &Arc<Histogram>); 5] = [
            ("evaluation/accuracy-proxy", eval_accuracy_wall()),
            ("evaluation/cost-model", eval_cost_model_wall()),
            ("evaluation/scheduler", eval_sched_solve_wall()),
            ("controller", controller_wall()),
            ("checkpointing", checkpoint_encode_wall()),
        ];
        let mut components: Vec<ProfileComponent> = leaves
            .iter()
            .map(|(name, histogram)| {
                let snap = histogram.snapshot();
                ProfileComponent {
                    name: (*name).to_string(),
                    wall_ms: snap.sum as f64 / 1e6,
                    count: snap.count,
                }
            })
            .collect();
        components.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        let attributed: f64 = components.iter().map(|c| c.wall_ms).sum();
        let coverage = if wall_ms > 0.0 {
            attributed / wall_ms
        } else {
            0.0
        };
        components.push(ProfileComponent {
            name: "other".to_string(),
            wall_ms: (wall_ms - attributed).max(0.0),
            count: 0,
        });
        Self {
            wall_ms,
            components,
            coverage,
        }
    }

    /// The breakdown as a [`ConfigValue`] table (the `--format json`
    /// payload).
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("wall_ms", ConfigValue::Float(self.wall_ms));
        root.insert("coverage", ConfigValue::Float(self.coverage));
        root.insert(
            "components",
            ConfigValue::Array(
                self.components
                    .iter()
                    .map(|c| {
                        let mut entry = ConfigValue::table();
                        entry.insert("name", ConfigValue::Str(c.name.clone()));
                        entry.insert("wall_ms", ConfigValue::Float(c.wall_ms));
                        entry.insert("spans", ConfigValue::Integer(c.count as i64));
                        entry
                    })
                    .collect(),
            ),
        );
        root
    }

    /// The breakdown as an indented text tree (the default `nasaic
    /// profile` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "wall {:.1} ms", self.wall_ms);
        let pct = |ms: f64| {
            if self.wall_ms > 0.0 {
                100.0 * ms / self.wall_ms
            } else {
                0.0
            }
        };
        // Group the `evaluation/…` leaves under one parent row.
        let eval_ms: f64 = self
            .components
            .iter()
            .filter(|c| c.name.starts_with("evaluation/"))
            .map(|c| c.wall_ms)
            .sum();
        let _ = writeln!(
            out,
            "├─ evaluation {:.1} ms ({:.1}%)",
            eval_ms,
            pct(eval_ms)
        );
        for component in &self.components {
            if let Some(leaf) = component.name.strip_prefix("evaluation/") {
                let _ = writeln!(
                    out,
                    "│  ├─ {leaf} {:.1} ms ({:.1}%, {} spans)",
                    component.wall_ms,
                    pct(component.wall_ms),
                    component.count
                );
            }
        }
        for component in &self.components {
            if component.name.starts_with("evaluation/") {
                continue;
            }
            let spans = if component.count > 0 {
                format!(", {} spans", component.count)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "├─ {} {:.1} ms ({:.1}%{spans})",
                component.name,
                component.wall_ms,
                pct(component.wall_ms)
            );
        }
        let _ = writeln!(out, "└─ coverage {:.1}%", 100.0 * self.coverage);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::PhaseSummary;

    #[test]
    fn snapshot_value_covers_all_kinds() {
        let registry = telemetry::MetricsRegistry::new();
        registry.counter("a_total", &[("k", "v")]).add(3);
        registry.gauge("b_depth", &[]).set(2.5);
        registry.histogram("c_ns", &[]).record(8);
        let value = snapshot_to_value(&registry.snapshot());
        let entries = value.as_array().expect("array");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(entries[0].get("value").unwrap().as_integer(), Some(3));
        assert_eq!(
            entries[0]
                .get("labels")
                .and_then(|l| l.get("k"))
                .and_then(ConfigValue::as_str),
            Some("v")
        );
        assert_eq!(entries[1].get("kind").unwrap().as_str(), Some("gauge"));
        assert_eq!(entries[2].get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(entries[2].get("count").unwrap().as_integer(), Some(1));
        // The whole thing survives a JSON round trip.
        let json = crate::scenario::value::to_json_compact(&value);
        assert_eq!(
            crate::scenario::value::parse_json(&json).expect("parses"),
            value
        );
    }

    #[test]
    fn profile_breakdown_attributes_and_reports_coverage() {
        // Build directly from synthetic components to stay independent of
        // the global registry (other tests may run concurrently).
        let breakdown = ProfileBreakdown {
            wall_ms: 100.0,
            components: vec![
                ProfileComponent {
                    name: "evaluation/scheduler".into(),
                    wall_ms: 60.0,
                    count: 10,
                },
                ProfileComponent {
                    name: "controller".into(),
                    wall_ms: 35.0,
                    count: 5,
                },
                ProfileComponent {
                    name: "other".into(),
                    wall_ms: 5.0,
                    count: 0,
                },
            ],
            coverage: 0.95,
        };
        let text = breakdown.render_text();
        assert!(text.contains("wall 100.0 ms"), "{text}");
        assert!(text.contains("scheduler 60.0 ms (60.0%"), "{text}");
        assert!(text.contains("coverage 95.0%"), "{text}");
        let value = breakdown.to_value();
        assert_eq!(value.get("coverage").unwrap().as_float(), Some(0.95));
        assert_eq!(
            value.get("components").unwrap().as_array().unwrap().len(),
            3
        );
    }

    #[test]
    fn metrics_observer_is_passive_when_disabled() {
        // With telemetry off (the default in tests) the observer must not
        // touch the registry at all — phase events leave no clock entries.
        let observer = MetricsObserver::new();
        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "nas".into(),
            budget: 3,
        });
        assert!(
            observer.phase_starts.lock().unwrap().is_empty(),
            "disabled observer recorded a phase start"
        );
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "nas".into(),
            summary: PhaseSummary {
                name: "nas".into(),
                episodes: 3,
                explored: 3,
                spec_compliant: 0,
                best_weighted_accuracy: None,
                detail: String::new(),
            },
        });
    }
}
