//! Externalized search state: versioned checkpoints, checkpoint sinks,
//! and deterministic shard plans.
//!
//! Every [`SearchAlgorithm`](crate::algorithm::SearchAlgorithm) keeps its
//! mutable state — RNG stream positions, controller weights and optimizer
//! accumulators, incumbents, populations, budget spent — externalizable
//! through this module:
//!
//! * [`SearchCheckpoint`] is the versioned envelope: algorithm name, seed,
//!   a monotonic `progress` counter (the driver's own unit: samples,
//!   episodes, accepted steps, generations) and an opaque driver-specific
//!   `state` tree.  It round-trips through the scenario JSON codec, so a
//!   checkpoint written by `nasaic run --checkpoint` is plain JSON.
//! * [`CheckpointSink`] decides *when* checkpoints are taken
//!   ([`CheckpointSink::wants`]) and receives them.  Drivers build the
//!   state tree lazily, so a [`NullCheckpointSink`] run pays nothing.
//! * [`ShardPlan`] / [`ShardPartial`] split one run across `N`
//!   deterministic workers.  A *strided* plan assigns partitionable unit
//!   `i` to shard `i % N`; [`merge_replay`] re-plays every shard's keyed
//!   solutions in global draw order through [`SearchOutcome::record`], so
//!   the merged outcome is bit-identical to the single-process run.  A
//!   *sequential* plan is the fallback for inherently serial drivers
//!   (shard 0 runs the whole search, the rest return empty partials).
//!
//! The invariant the whole module leans on: [`SearchOutcome`] is fully
//! determined by its `explored` record sequence plus a handful of scalar
//! counters — `best` and `spec_compliant` are derived by `record`.  Both
//! the outcome codec and shard merging therefore serialize only the
//! record sequence and replay it on the way back in.
//!
//! Floats are serialized with the shortest-round-trip formatter, so every
//! finite `f64` survives exactly.  Non-finite metrics (infeasible mappings
//! carry `INFINITY` costs) are encoded as the strings `"inf"`, `"-inf"`
//! and `"nan"` because the JSON grammar has no literal for them.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::candidate::Candidate;
use crate::evaluator::Evaluation;
use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
use crate::scenario::value::{self, ConfigError, ConfigValue};
use crate::spec::SpecCheck;
use crate::workload::Workload;
use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
use nasaic_cost::HardwareMetrics;
use nasaic_rl::{ControllerState, PolicyState, TrainerState};
use nasaic_tensor::Matrix;
use rand::rngs::StdRngState;

/// The checkpoint format version this build writes (and the only one it
/// accepts).
pub const CHECKPOINT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// The checkpoint envelope
// ---------------------------------------------------------------------------

/// A versioned, serializable snapshot of a search driver's mutable state.
///
/// The envelope is driver-agnostic; `state` is the driver's own table (see
/// each driver's `run_checkpointed` for its layout).  Checkpoints are only
/// valid for the same algorithm, seed, workload and budget they were taken
/// from — drivers assert the first two and trust the caller for the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The driver's stable name ([`SearchAlgorithm::name`](crate::algorithm::SearchAlgorithm::name)).
    pub algorithm: String,
    /// The seed the run was started with.
    pub seed: u64,
    /// Progress units completed when the snapshot was taken (the driver's
    /// own unit: samples, episodes, accepted steps, generations).
    pub progress: usize,
    /// The driver-specific state tree.
    pub state: ConfigValue,
}

impl SearchCheckpoint {
    /// Wrap a driver state tree in a version-1 envelope.
    pub fn new(algorithm: &str, seed: u64, progress: usize, state: ConfigValue) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            algorithm: algorithm.to_string(),
            seed,
            progress,
            state,
        }
    }

    /// The checkpoint as a [`ConfigValue`] table.
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(self.version as i64));
        root.insert("algorithm", ConfigValue::Str(self.algorithm.clone()));
        root.insert("seed", ConfigValue::Integer(self.seed as i64));
        root.insert("progress", ConfigValue::Integer(self.progress as i64));
        root.insert("state", self.state.clone());
        root
    }

    /// Parse a checkpoint from its [`ConfigValue`] form.
    ///
    /// # Errors
    ///
    /// Returns a schema error for missing/ill-typed fields or an
    /// unsupported version.
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        let version = usize_field(value, "version")? as u32;
        if version != CHECKPOINT_VERSION {
            return Err(ConfigError::schema(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            )));
        }
        Ok(Self {
            version,
            algorithm: str_field(value, "algorithm")?.to_string(),
            seed: int_field(value, "seed")? as u64,
            progress: usize_field(value, "progress")?,
            state: field(value, "state")?.clone(),
        })
    }

    /// Serialize to pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        value::to_json(&self.to_value())
    }

    /// Parse from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error or the schema error of
    /// [`from_value`](Self::from_value).
    pub fn parse_json(text: &str) -> Result<Self, ConfigError> {
        Self::from_value(&value::parse_json(text)?)
    }

    /// Assert that this checkpoint belongs to the given driver and seed.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on a mismatch — resuming a
    /// checkpoint under a different algorithm or seed would silently
    /// diverge, which is strictly worse than failing.
    pub fn expect_run(&self, algorithm: &str, seed: u64) {
        assert_eq!(
            self.algorithm, algorithm,
            "checkpoint belongs to algorithm `{}`, not `{algorithm}`",
            self.algorithm
        );
        assert_eq!(
            self.seed, seed,
            "checkpoint was taken at seed {}, not {seed}",
            self.seed
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint sinks
// ---------------------------------------------------------------------------

/// A consumer of checkpoints, queried by the drivers at every potential
/// snapshot point.
///
/// Drivers call [`wants`](Self::wants) *before* building the (possibly
/// expensive) state tree; a sink that always answers `false` makes
/// checkpointing free.  `on_checkpoint` is called at most once per
/// progress value, in increasing progress order.
pub trait CheckpointSink {
    /// Should a checkpoint be taken after `progress` units of work?
    fn wants(&self, progress: usize) -> bool;

    /// Receive a checkpoint the driver just built.
    fn on_checkpoint(&self, checkpoint: &SearchCheckpoint);
}

/// The sink that never wants a checkpoint (the default for plain runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCheckpointSink;

impl CheckpointSink for NullCheckpointSink {
    fn wants(&self, _progress: usize) -> bool {
        false
    }

    fn on_checkpoint(&self, _checkpoint: &SearchCheckpoint) {}
}

/// A sink that keeps every checkpoint in memory — the test harness for
/// resume-identity gates.
#[derive(Debug)]
pub struct RecordingCheckpointSink {
    every: usize,
    checkpoints: Mutex<Vec<SearchCheckpoint>>,
}

impl RecordingCheckpointSink {
    /// Record a checkpoint every `every` progress units (`every == 1`
    /// records at every snapshot point).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            every,
            checkpoints: Mutex::new(Vec::new()),
        }
    }

    /// The recorded checkpoints, in capture order.
    pub fn checkpoints(&self) -> Vec<SearchCheckpoint> {
        self.checkpoints
            .lock()
            .expect("recording checkpoint sink lock")
            .clone()
    }
}

impl CheckpointSink for RecordingCheckpointSink {
    fn wants(&self, progress: usize) -> bool {
        progress > 0 && progress.is_multiple_of(self.every)
    }

    fn on_checkpoint(&self, checkpoint: &SearchCheckpoint) {
        self.checkpoints
            .lock()
            .expect("recording checkpoint sink lock")
            .push(checkpoint.clone());
    }
}

/// A sink that writes the latest checkpoint to a file — the CLI's
/// `nasaic run --checkpoint <file> --checkpoint-every <n>` sink.
///
/// Each write goes to `<file>.tmp` first and is renamed over the target,
/// so a crash mid-write leaves the previous checkpoint intact.  Write
/// errors are swallowed (the checkpoint is a safety net, not the result);
/// the last error, if any, is kept for the caller to surface.
#[derive(Debug)]
pub struct FileCheckpointSink {
    path: PathBuf,
    every: usize,
    last_error: Mutex<Option<std::io::Error>>,
}

impl FileCheckpointSink {
    /// Write to `path` every `every` progress units.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: &Path, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            path: path.to_path_buf(),
            every,
            last_error: Mutex::new(None),
        }
    }

    /// The first/last swallowed I/O error, if any (taking it clears it).
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.last_error
            .lock()
            .expect("file checkpoint sink lock")
            .take()
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn wants(&self, progress: usize) -> bool {
        progress > 0 && progress.is_multiple_of(self.every)
    }

    fn on_checkpoint(&self, checkpoint: &SearchCheckpoint) {
        let tmp = self.path.with_extension("tmp");
        let result =
            fs::write(&tmp, checkpoint.to_json()).and_then(|()| fs::rename(&tmp, &self.path));
        if let Err(error) = result {
            *self.last_error.lock().expect("file checkpoint sink lock") = Some(error);
        }
    }
}

// ---------------------------------------------------------------------------
// Shard plans and partial outcomes
// ---------------------------------------------------------------------------

/// How a driver's work is split across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// The driver is inherently serial: shard 0 runs the whole search and
    /// carries the complete outcome; the other shards are empty.
    Sequential,
    /// Partitionable unit `i` runs on shard `i % shards`; the merge
    /// replays all shards' solutions in unit order.
    Strided,
}

/// A deterministic partition of one search run across `shards` workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The driver the plan belongs to.
    pub algorithm: String,
    /// Number of workers.
    pub shards: usize,
    /// Partitioning strategy.
    pub mode: ShardMode,
    /// Number of partitionable units (`0` for sequential plans).
    pub items: usize,
}

impl ShardPlan {
    /// A sequential (fallback) plan: shard 0 does everything.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn sequential(algorithm: &str, shards: usize) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        Self {
            algorithm: algorithm.to_string(),
            shards,
            mode: ShardMode::Sequential,
            items: 0,
        }
    }

    /// A strided plan over `items` partitionable units.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn strided(algorithm: &str, shards: usize, items: usize) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        Self {
            algorithm: algorithm.to_string(),
            shards,
            mode: ShardMode::Strided,
            items,
        }
    }

    /// Does unit `index` run on shard `shard_index` under this plan?
    pub fn assigns(&self, index: usize, shard_index: usize) -> bool {
        match self.mode {
            ShardMode::Sequential => shard_index == 0,
            ShardMode::Strided => index % self.shards == shard_index,
        }
    }
}

/// One shard's contribution to a sharded run.
///
/// Strided shards carry their assigned solutions keyed by the *global*
/// unit index, so [`merge_replay`] can reconstruct the single-process
/// record order.  Sequential shard 0 carries the whole outcome in
/// `complete` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPartial {
    /// The driver that produced the partial.
    pub algorithm: String,
    /// Total number of shards in the plan.
    pub shards: usize,
    /// This shard's index in `0..shards`.
    pub shard_index: usize,
    /// Solutions evaluated by this shard, keyed by global unit index.
    pub solutions: Vec<(usize, ExploredSolution)>,
    /// The episode count the full run would report (each shard knows the
    /// plan's total; the merge takes the maximum).
    pub episodes: usize,
    /// Phase summaries contributed by this shard (redundant phases — every
    /// shard re-runs them — are taken from shard 0 at merge time).
    pub phases: Vec<PhaseSummary>,
    /// The full outcome, for sequential plans (shard 0 only).
    pub complete: Option<SearchOutcome>,
}

impl ShardPartial {
    /// An empty partial (a sequential shard other than 0).
    pub fn empty(algorithm: &str, shards: usize, shard_index: usize) -> Self {
        Self {
            algorithm: algorithm.to_string(),
            shards,
            shard_index,
            solutions: Vec::new(),
            episodes: 0,
            phases: Vec::new(),
            complete: None,
        }
    }

    /// A partial carrying the complete outcome (sequential shard 0).
    pub fn completed(algorithm: &str, shards: usize, outcome: SearchOutcome) -> Self {
        Self {
            algorithm: algorithm.to_string(),
            shards,
            shard_index: 0,
            solutions: Vec::new(),
            episodes: outcome.episodes,
            phases: Vec::new(),
            complete: Some(outcome),
        }
    }

    /// The partial as a [`ConfigValue`] table.
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("algorithm", ConfigValue::Str(self.algorithm.clone()));
        root.insert("shards", ConfigValue::Integer(self.shards as i64));
        root.insert("shard_index", ConfigValue::Integer(self.shard_index as i64));
        root.insert(
            "solutions",
            ConfigValue::Array(
                self.solutions
                    .iter()
                    .map(|(key, solution)| {
                        let mut entry = ConfigValue::table();
                        entry.insert("key", ConfigValue::Integer(*key as i64));
                        entry.insert("solution", solution_to_value(solution));
                        entry
                    })
                    .collect(),
            ),
        );
        root.insert("episodes", ConfigValue::Integer(self.episodes as i64));
        root.insert(
            "phases",
            ConfigValue::Array(self.phases.iter().map(PhaseSummary::to_value).collect()),
        );
        if let Some(outcome) = &self.complete {
            root.insert("complete", outcome_to_value(outcome));
        }
        root
    }

    /// Parse a partial from its [`ConfigValue`] form (candidates are
    /// rebuilt against `workload`).
    ///
    /// # Errors
    ///
    /// Returns a schema error for missing/ill-typed fields or candidates
    /// that do not fit the workload.
    pub fn from_value(value: &ConfigValue, workload: &Workload) -> Result<Self, ConfigError> {
        let mut solutions = Vec::new();
        for entry in array_field(value, "solutions")? {
            let key = usize_field(entry, "key")?;
            let solution = solution_from_value(field(entry, "solution")?, workload)?;
            solutions.push((key, solution));
        }
        let mut phases = Vec::new();
        for phase in array_field(value, "phases")? {
            phases.push(phase_summary_from_value(phase)?);
        }
        let complete = match value.get("complete") {
            Some(outcome) => Some(outcome_from_value(outcome, workload)?),
            None => None,
        };
        Ok(Self {
            algorithm: str_field(value, "algorithm")?.to_string(),
            shards: usize_field(value, "shards")?,
            shard_index: usize_field(value, "shard_index")?,
            solutions,
            episodes: usize_field(value, "episodes")?,
            phases,
            complete,
        })
    }

    /// Serialize to pretty JSON (the `--shard-out` format).
    pub fn to_json(&self) -> String {
        value::to_json(&self.to_value())
    }

    /// Parse from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error or the schema error of
    /// [`from_value`](Self::from_value).
    pub fn parse_json(text: &str, workload: &Workload) -> Result<Self, ConfigError> {
        Self::from_value(&value::parse_json(text)?, workload)
    }
}

/// Merge shard partials by replaying their solutions in global unit order
/// — the pure merge behind
/// [`SearchAlgorithm::merge_shards`](crate::algorithm::SearchAlgorithm::merge_shards).
///
/// Sequential plans short-circuit to shard 0's complete outcome.  Strided
/// plans sort all keyed solutions and feed them through
/// [`SearchOutcome::record`], reconstructing `best` and `spec_compliant`
/// exactly as the single-process run did; `episodes` is the maximum the
/// shards report, and phases are taken from shard 0.
///
/// # Panics
///
/// Panics when the partials do not form exactly one complete, consistent
/// set for the plan (wrong count, duplicate/missing shard indices, a
/// different algorithm, or a sequential shard 0 without an outcome).
pub fn merge_replay(plan: &ShardPlan, mut partials: Vec<ShardPartial>) -> SearchOutcome {
    assert_eq!(
        partials.len(),
        plan.shards,
        "merge needs exactly one partial per shard"
    );
    partials.sort_by_key(|partial| partial.shard_index);
    for (index, partial) in partials.iter().enumerate() {
        assert_eq!(
            partial.shard_index, index,
            "duplicate or missing shard index {index}"
        );
        assert_eq!(
            partial.algorithm, plan.algorithm,
            "shard {index} belongs to algorithm `{}`, not `{}`",
            partial.algorithm, plan.algorithm
        );
        assert_eq!(
            partial.shards, plan.shards,
            "shard {index} was produced for a {}-shard plan, not {}",
            partial.shards, plan.shards
        );
    }
    if plan.mode == ShardMode::Sequential {
        let shard0 = partials.into_iter().next().expect("at least one shard");
        return shard0
            .complete
            .expect("sequential shard 0 must carry the complete outcome");
    }
    let mut keyed: Vec<(usize, ExploredSolution)> = Vec::new();
    let mut episodes = 0;
    let mut phases = Vec::new();
    for (index, partial) in partials.into_iter().enumerate() {
        assert!(
            partial.complete.is_none(),
            "strided shard {index} must not carry a complete outcome"
        );
        keyed.extend(partial.solutions);
        episodes = episodes.max(partial.episodes);
        if index == 0 {
            phases = partial.phases;
        }
    }
    keyed.sort_by_key(|(key, _)| *key);
    let mut outcome = SearchOutcome::empty();
    for (_, solution) in keyed {
        outcome.record(solution);
    }
    outcome.episodes = episodes;
    outcome.phases = phases;
    outcome
}

/// Offer a checkpoint to `sink` at `progress`, building the state tree
/// only if the sink wants it, and announcing the save on the observer
/// stream — the one snapshot-point helper all drivers share.
pub fn offer_checkpoint(
    sink: &dyn CheckpointSink,
    observer: &dyn crate::algorithm::SearchObserver,
    algorithm: &str,
    seed: u64,
    progress: usize,
    state: impl FnOnce() -> ConfigValue,
) {
    if sink.wants(progress) {
        // The span covers building the state tree and handing it to the
        // sink (for a file sink: JSON encode + write).
        let _span = crate::metrics::maybe_time(crate::metrics::checkpoint_encode_wall);
        let checkpoint = SearchCheckpoint::new(algorithm, seed, progress, state());
        sink.on_checkpoint(&checkpoint);
        observer.on_event(&crate::algorithm::SearchEvent::CheckpointSaved { progress });
    }
}

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

fn field<'a>(table: &'a ConfigValue, key: &str) -> Result<&'a ConfigValue, ConfigError> {
    table
        .get(key)
        .ok_or_else(|| ConfigError::schema(format!("checkpoint: missing field `{key}`")))
}

fn str_field<'a>(table: &'a ConfigValue, key: &str) -> Result<&'a str, ConfigError> {
    field(table, key)?
        .as_str()
        .ok_or_else(|| ConfigError::schema(format!("checkpoint: field `{key}` is not a string")))
}

fn int_field(table: &ConfigValue, key: &str) -> Result<i64, ConfigError> {
    field(table, key)?
        .as_integer()
        .ok_or_else(|| ConfigError::schema(format!("checkpoint: field `{key}` is not an integer")))
}

fn usize_field(table: &ConfigValue, key: &str) -> Result<usize, ConfigError> {
    let raw = int_field(table, key)?;
    usize::try_from(raw)
        .map_err(|_| ConfigError::schema(format!("checkpoint: field `{key}` is negative ({raw})")))
}

fn bool_field(table: &ConfigValue, key: &str) -> Result<bool, ConfigError> {
    field(table, key)?
        .as_bool()
        .ok_or_else(|| ConfigError::schema(format!("checkpoint: field `{key}` is not a boolean")))
}

fn float_field(table: &ConfigValue, key: &str) -> Result<f64, ConfigError> {
    float_from_value(field(table, key)?)
        .map_err(|_| ConfigError::schema(format!("checkpoint: field `{key}` is not a float")))
}

fn array_field<'a>(table: &'a ConfigValue, key: &str) -> Result<&'a [ConfigValue], ConfigError> {
    field(table, key)?
        .as_array()
        .ok_or_else(|| ConfigError::schema(format!("checkpoint: field `{key}` is not an array")))
}

/// Encode one `f64` exactly: finite values as floats (the emitter uses the
/// shortest round-trip formatting), non-finite ones as the strings
/// `"inf"` / `"-inf"` / `"nan"` (JSON has no literal for them, and
/// infeasible mappings legitimately carry `INFINITY` metrics).
pub fn float_to_value(x: f64) -> ConfigValue {
    if x.is_finite() {
        ConfigValue::Float(x)
    } else if x.is_nan() {
        ConfigValue::Str("nan".to_string())
    } else if x > 0.0 {
        ConfigValue::Str("inf".to_string())
    } else {
        ConfigValue::Str("-inf".to_string())
    }
}

/// Decode a float written by [`float_to_value`].
///
/// # Errors
///
/// Returns a schema error for values that are neither numeric nor one of
/// the non-finite marker strings.
pub fn float_from_value(value: &ConfigValue) -> Result<f64, ConfigError> {
    if let Some(x) = value.as_float() {
        return Ok(x);
    }
    match value.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some("nan") => Ok(f64::NAN),
        _ => Err(ConfigError::schema(format!(
            "checkpoint: expected a float, found {}",
            value.kind()
        ))),
    }
}

pub(crate) fn floats_to_value(xs: &[f64]) -> ConfigValue {
    ConfigValue::Array(xs.iter().copied().map(float_to_value).collect())
}

pub(crate) fn floats_from_value(value: &ConfigValue) -> Result<Vec<f64>, ConfigError> {
    value
        .as_array()
        .ok_or_else(|| ConfigError::schema("checkpoint: expected a float array"))?
        .iter()
        .map(float_from_value)
        .collect()
}

pub(crate) fn usizes_to_value(xs: &[usize]) -> ConfigValue {
    ConfigValue::Array(xs.iter().map(|&x| ConfigValue::Integer(x as i64)).collect())
}

pub(crate) fn usizes_from_value(value: &ConfigValue) -> Result<Vec<usize>, ConfigError> {
    value
        .as_array()
        .ok_or_else(|| ConfigError::schema("checkpoint: expected an integer array"))?
        .iter()
        .map(|item| {
            item.as_integer()
                .and_then(|raw| usize::try_from(raw).ok())
                .ok_or_else(|| ConfigError::schema("checkpoint: expected a non-negative integer"))
        })
        .collect()
}

/// Encode a [`StdRngState`] (ChaCha12 key + block counter + buffer index).
pub fn rng_state_to_value(state: &StdRngState) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert(
        "key",
        ConfigValue::Array(
            state
                .key
                .iter()
                .map(|&word| ConfigValue::Integer(word as i64))
                .collect(),
        ),
    );
    root.insert("counter", ConfigValue::Integer(state.counter as i64));
    root.insert("index", ConfigValue::Integer(state.index as i64));
    root
}

/// Decode a [`StdRngState`] written by [`rng_state_to_value`].
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields or a key that is
/// not exactly 8 words.
pub fn rng_state_from_value(value: &ConfigValue) -> Result<StdRngState, ConfigError> {
    let words = array_field(value, "key")?;
    if words.len() != 8 {
        return Err(ConfigError::schema(format!(
            "checkpoint: rng key has {} words, expected 8",
            words.len()
        )));
    }
    let mut key = [0u32; 8];
    for (slot, word) in key.iter_mut().zip(words) {
        *slot = word
            .as_integer()
            .and_then(|raw| u32::try_from(raw).ok())
            .ok_or_else(|| ConfigError::schema("checkpoint: rng key word out of range"))?;
    }
    Ok(StdRngState {
        key,
        counter: int_field(value, "counter")? as u64,
        index: usize_field(value, "index")?,
    })
}

/// Encode a matrix as `{rows, cols, data}`.
pub fn matrix_to_value(matrix: &Matrix) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert("rows", ConfigValue::Integer(matrix.rows() as i64));
    root.insert("cols", ConfigValue::Integer(matrix.cols() as i64));
    root.insert("data", floats_to_value(matrix.as_slice()));
    root
}

/// Decode a matrix written by [`matrix_to_value`].
///
/// # Errors
///
/// Returns a schema error for missing fields or a data length that does
/// not match `rows * cols`.
pub fn matrix_from_value(value: &ConfigValue) -> Result<Matrix, ConfigError> {
    let rows = usize_field(value, "rows")?;
    let cols = usize_field(value, "cols")?;
    let data = floats_from_value(field(value, "data")?)?;
    if data.len() != rows * cols {
        return Err(ConfigError::schema(format!(
            "checkpoint: matrix data has {} elements, expected {rows}x{cols}",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn opt_matrix_to_value(matrix: Option<&Matrix>) -> ConfigValue {
    match matrix {
        Some(matrix) => matrix_to_value(matrix),
        None => ConfigValue::Bool(false),
    }
}

fn opt_matrix_from_value(value: &ConfigValue) -> Result<Option<Matrix>, ConfigError> {
    match value {
        ConfigValue::Bool(false) => Ok(None),
        other => Ok(Some(matrix_from_value(other)?)),
    }
}

/// Encode a controller snapshot (policy weights, RMSProp accumulators,
/// trainer baseline/counters).
pub fn controller_state_to_value(state: &ControllerState) -> ConfigValue {
    let policy = &state.policy;
    let mut policy_table = ConfigValue::table();
    policy_table.insert("w_x", matrix_to_value(&policy.w_x));
    policy_table.insert("w_h", matrix_to_value(&policy.w_h));
    policy_table.insert("b", matrix_to_value(&policy.b));
    policy_table.insert(
        "heads",
        ConfigValue::Array(
            policy
                .heads
                .iter()
                .map(|(weights, bias)| {
                    ConfigValue::Array(vec![matrix_to_value(weights), matrix_to_value(bias)])
                })
                .collect(),
        ),
    );
    policy_table.insert(
        "opt_cell",
        ConfigValue::Array(
            policy
                .opt_cell
                .iter()
                .map(|slot| opt_matrix_to_value(slot.as_ref()))
                .collect(),
        ),
    );
    policy_table.insert(
        "opt_heads",
        ConfigValue::Array(
            policy
                .opt_heads
                .iter()
                .map(|(weights, bias)| {
                    ConfigValue::Array(vec![
                        opt_matrix_to_value(weights.as_ref()),
                        opt_matrix_to_value(bias.as_ref()),
                    ])
                })
                .collect(),
        ),
    );
    let trainer = &state.trainer;
    let mut trainer_table = ConfigValue::table();
    if let Some(baseline) = trainer.baseline {
        trainer_table.insert("baseline", float_to_value(baseline));
    }
    trainer_table.insert("updates", ConfigValue::Integer(trainer.updates as i64));
    trainer_table.insert("reward_history", floats_to_value(&trainer.reward_history));
    let mut root = ConfigValue::table();
    root.insert("policy", policy_table);
    root.insert("trainer", trainer_table);
    root
}

fn matrix_pair_from_value(value: &ConfigValue) -> Result<(Matrix, Matrix), ConfigError> {
    let pair = value
        .as_array()
        .ok_or_else(|| ConfigError::schema("checkpoint: expected a matrix pair"))?;
    if pair.len() != 2 {
        return Err(ConfigError::schema(
            "checkpoint: matrix pair must have 2 entries",
        ));
    }
    Ok((matrix_from_value(&pair[0])?, matrix_from_value(&pair[1])?))
}

fn opt_matrix_pair_from_value(
    value: &ConfigValue,
) -> Result<(Option<Matrix>, Option<Matrix>), ConfigError> {
    let pair = value
        .as_array()
        .ok_or_else(|| ConfigError::schema("checkpoint: expected an accumulator pair"))?;
    if pair.len() != 2 {
        return Err(ConfigError::schema(
            "checkpoint: accumulator pair must have 2 entries",
        ));
    }
    Ok((
        opt_matrix_from_value(&pair[0])?,
        opt_matrix_from_value(&pair[1])?,
    ))
}

/// Decode a controller snapshot written by [`controller_state_to_value`].
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields.
pub fn controller_state_from_value(value: &ConfigValue) -> Result<ControllerState, ConfigError> {
    let policy_value = field(value, "policy")?;
    let mut heads = Vec::new();
    for head in array_field(policy_value, "heads")? {
        heads.push(matrix_pair_from_value(head)?);
    }
    let cell_slots = array_field(policy_value, "opt_cell")?;
    if cell_slots.len() != 3 {
        return Err(ConfigError::schema(
            "checkpoint: opt_cell must have 3 entries",
        ));
    }
    let opt_cell = [
        opt_matrix_from_value(&cell_slots[0])?,
        opt_matrix_from_value(&cell_slots[1])?,
        opt_matrix_from_value(&cell_slots[2])?,
    ];
    let mut opt_heads = Vec::new();
    for head in array_field(policy_value, "opt_heads")? {
        opt_heads.push(opt_matrix_pair_from_value(head)?);
    }
    let policy = PolicyState {
        w_x: matrix_from_value(field(policy_value, "w_x")?)?,
        w_h: matrix_from_value(field(policy_value, "w_h")?)?,
        b: matrix_from_value(field(policy_value, "b")?)?,
        heads,
        opt_cell,
        opt_heads,
    };
    let trainer_value = field(value, "trainer")?;
    let baseline = match trainer_value.get("baseline") {
        Some(raw) => Some(float_from_value(raw)?),
        None => None,
    };
    let trainer = TrainerState {
        baseline,
        updates: int_field(trainer_value, "updates")? as u64,
        reward_history: floats_from_value(field(trainer_value, "reward_history")?)?,
    };
    Ok(ControllerState { policy, trainer })
}

/// Encode a candidate: per-task architecture hyperparameter values (the
/// architectures are rebuilt from the workload's backbones), the
/// controller index vectors, and the accelerator's sub-accelerator
/// triples.
pub fn candidate_to_value(candidate: &Candidate) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert(
        "arch_values",
        ConfigValue::Array(
            candidate
                .architectures
                .iter()
                .map(|arch| usizes_to_value(&arch.hyperparameters))
                .collect(),
        ),
    );
    root.insert(
        "arch_indices",
        ConfigValue::Array(
            candidate
                .architecture_indices
                .iter()
                .map(|indices| usizes_to_value(indices))
                .collect(),
        ),
    );
    root.insert(
        "hardware_indices",
        usizes_to_value(&candidate.hardware_indices),
    );
    root.insert(
        "subs",
        ConfigValue::Array(
            candidate
                .accelerator
                .sub_accelerators()
                .iter()
                .map(|sub| {
                    ConfigValue::Array(vec![
                        ConfigValue::Integer(sub.dataflow.index() as i64),
                        ConfigValue::Integer(sub.num_pes as i64),
                        ConfigValue::Integer(sub.bandwidth_gbps as i64),
                    ])
                })
                .collect(),
        ),
    );
    root
}

/// Decode a candidate written by [`candidate_to_value`], rebuilding the
/// architectures from `workload`'s backbones.
///
/// # Errors
///
/// Returns a schema error for missing fields, a task-count mismatch, or an
/// unknown dataflow index.
pub fn candidate_from_value(
    value: &ConfigValue,
    workload: &Workload,
) -> Result<Candidate, ConfigError> {
    let arch_values = array_field(value, "arch_values")?;
    if arch_values.len() != workload.tasks.len() {
        return Err(ConfigError::schema(format!(
            "checkpoint: candidate has {} architectures, workload has {} tasks",
            arch_values.len(),
            workload.tasks.len()
        )));
    }
    let mut architectures = Vec::with_capacity(arch_values.len());
    for (task, values) in workload.tasks.iter().zip(arch_values) {
        architectures.push(
            task.backbone
                .materialize_values(&usizes_from_value(values)?),
        );
    }
    let mut architecture_indices = Vec::new();
    for indices in array_field(value, "arch_indices")? {
        architecture_indices.push(usizes_from_value(indices)?);
    }
    let mut subs = Vec::new();
    for sub in array_field(value, "subs")? {
        let triple = usizes_from_value(sub)?;
        if triple.len() != 3 {
            return Err(ConfigError::schema(
                "checkpoint: sub-accelerator triple must have 3 entries",
            ));
        }
        let dataflow = Dataflow::from_index(triple[0]).ok_or_else(|| {
            ConfigError::schema(format!("checkpoint: unknown dataflow index {}", triple[0]))
        })?;
        subs.push(SubAccelerator::new(dataflow, triple[1], triple[2]));
    }
    Ok(Candidate {
        architectures,
        accelerator: Accelerator::new(subs),
        architecture_indices,
        hardware_indices: usizes_from_value(field(value, "hardware_indices")?)?,
    })
}

/// Encode an evaluation (accuracies, weighted accuracy, hardware metrics
/// — possibly `INFINITY` — spec check, mapping feasibility).
pub fn evaluation_to_value(evaluation: &Evaluation) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert("accuracies", floats_to_value(&evaluation.accuracies));
    root.insert(
        "weighted_accuracy",
        float_to_value(evaluation.weighted_accuracy),
    );
    root.insert(
        "latency_cycles",
        float_to_value(evaluation.metrics.latency_cycles),
    );
    root.insert("energy_nj", float_to_value(evaluation.metrics.energy_nj));
    root.insert("area_um2", float_to_value(evaluation.metrics.area_um2));
    root.insert(
        "spec_latency",
        ConfigValue::Bool(evaluation.spec_check.latency),
    );
    root.insert(
        "spec_energy",
        ConfigValue::Bool(evaluation.spec_check.energy),
    );
    root.insert("spec_area", ConfigValue::Bool(evaluation.spec_check.area));
    root.insert(
        "mapping_feasible",
        ConfigValue::Bool(evaluation.mapping_feasible),
    );
    root
}

/// Decode an evaluation written by [`evaluation_to_value`].
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields.
pub fn evaluation_from_value(value: &ConfigValue) -> Result<Evaluation, ConfigError> {
    Ok(Evaluation {
        accuracies: floats_from_value(field(value, "accuracies")?)?,
        weighted_accuracy: float_field(value, "weighted_accuracy")?,
        metrics: HardwareMetrics {
            latency_cycles: float_field(value, "latency_cycles")?,
            energy_nj: float_field(value, "energy_nj")?,
            area_um2: float_field(value, "area_um2")?,
        },
        spec_check: SpecCheck {
            latency: bool_field(value, "spec_latency")?,
            energy: bool_field(value, "spec_energy")?,
            area: bool_field(value, "spec_area")?,
        },
        mapping_feasible: bool_field(value, "mapping_feasible")?,
    })
}

/// Encode one explored solution.
pub fn solution_to_value(solution: &ExploredSolution) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert("episode", ConfigValue::Integer(solution.episode as i64));
    root.insert("candidate", candidate_to_value(&solution.candidate));
    root.insert("evaluation", evaluation_to_value(&solution.evaluation));
    root.insert("reward", float_to_value(solution.reward));
    root
}

/// Decode a solution written by [`solution_to_value`].
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields.
pub fn solution_from_value(
    value: &ConfigValue,
    workload: &Workload,
) -> Result<ExploredSolution, ConfigError> {
    Ok(ExploredSolution {
        episode: usize_field(value, "episode")?,
        candidate: candidate_from_value(field(value, "candidate")?, workload)?,
        evaluation: evaluation_from_value(field(value, "evaluation")?)?,
        reward: float_field(value, "reward")?,
    })
}

/// Decode a phase summary written by [`PhaseSummary::to_value`].
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields.
pub fn phase_summary_from_value(value: &ConfigValue) -> Result<PhaseSummary, ConfigError> {
    let best_weighted_accuracy = match value.get("best_weighted_accuracy") {
        Some(raw) => Some(float_from_value(raw)?),
        None => None,
    };
    Ok(PhaseSummary {
        name: str_field(value, "name")?.to_string(),
        episodes: usize_field(value, "episodes")?,
        explored: usize_field(value, "explored")?,
        spec_compliant: usize_field(value, "spec_compliant")?,
        best_weighted_accuracy,
        detail: str_field(value, "detail")?.to_string(),
    })
}

/// Encode a full search outcome.
///
/// Only the `explored` record sequence and the scalar counters are
/// written: `best` and `spec_compliant` are reconstructed by replaying the
/// records through [`SearchOutcome::record`], which is exactly how every
/// driver built them in the first place.
pub fn outcome_to_value(outcome: &SearchOutcome) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert(
        "explored",
        ConfigValue::Array(outcome.explored.iter().map(solution_to_value).collect()),
    );
    root.insert("episodes", ConfigValue::Integer(outcome.episodes as i64));
    root.insert(
        "pruned_episodes",
        ConfigValue::Integer(outcome.pruned_episodes as i64),
    );
    root.insert("reward_history", floats_to_value(&outcome.reward_history));
    root.insert(
        "phases",
        ConfigValue::Array(outcome.phases.iter().map(PhaseSummary::to_value).collect()),
    );
    root
}

/// Decode an outcome written by [`outcome_to_value`] by replaying its
/// record sequence.
///
/// # Errors
///
/// Returns a schema error for missing/ill-typed fields.
pub fn outcome_from_value(
    value: &ConfigValue,
    workload: &Workload,
) -> Result<SearchOutcome, ConfigError> {
    let mut outcome = SearchOutcome::empty();
    for solution in array_field(value, "explored")? {
        outcome.record(solution_from_value(solution, workload)?);
    }
    outcome.episodes = usize_field(value, "episodes")?;
    outcome.pruned_episodes = usize_field(value, "pruned_episodes")?;
    outcome.reward_history = floats_from_value(field(value, "reward_history")?)?;
    for phase in array_field(value, "phases")? {
        outcome.phases.push(phase_summary_from_value(phase)?);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::{DesignSpecs, WorkloadId};
    use nasaic_rl::{Controller, ControllerConfig, Segment};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_solution(episode: usize, compliant: bool) -> ExploredSolution {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let architectures: Vec<_> = workload
            .tasks
            .iter()
            .map(|t| {
                if compliant {
                    t.backbone.smallest_architecture()
                } else {
                    t.backbone.largest_architecture()
                }
            })
            .collect();
        let accelerator = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1760, 40),
            SubAccelerator::new(Dataflow::Shidiannao, 1152, 24),
        ]);
        let candidate = Candidate::from_parts(architectures, accelerator);
        let evaluation = evaluator.evaluate(&candidate);
        ExploredSolution {
            episode,
            candidate,
            evaluation,
            reward: 0.25,
        }
    }

    #[test]
    fn checkpoint_envelope_round_trips_through_json() {
        let mut state = ConfigValue::table();
        state.insert("counter", ConfigValue::Integer(42));
        let checkpoint = SearchCheckpoint::new("monte-carlo", 7, 13, state);
        let parsed = SearchCheckpoint::parse_json(&checkpoint.to_json()).unwrap();
        assert_eq!(parsed, checkpoint);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut checkpoint = SearchCheckpoint::new("nasaic", 1, 0, ConfigValue::table());
        checkpoint.version = 99;
        let error = SearchCheckpoint::parse_json(&checkpoint.to_json()).unwrap_err();
        assert!(error.message.contains("version"), "{error}");
    }

    #[test]
    #[should_panic]
    fn mismatched_algorithm_is_rejected() {
        SearchCheckpoint::new("nasaic", 1, 0, ConfigValue::table()).expect_run("monte-carlo", 1);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for x in [1.5, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e308, 5e-324] {
            let decoded = float_from_value(&float_to_value(x)).unwrap();
            assert_eq!(decoded.to_bits(), x.to_bits(), "{x}");
        }
        let nan = float_from_value(&float_to_value(f64::NAN)).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn rng_state_round_trips_mid_buffer() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..37 {
            let _: u32 = rng.gen_range(0..1000);
        }
        let state = rng.state();
        let decoded = rng_state_from_value(&rng_state_to_value(&state)).unwrap();
        assert_eq!(decoded, state);
        let mut restored = StdRng::from_state(decoded);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(0..17usize), restored.gen_range(0..17usize));
        }
    }

    #[test]
    fn controller_state_round_trips_through_values() {
        let segments = vec![
            Segment::new("dnn0", vec![4, 3, 4]),
            Segment::new("aic0", vec![3, 17, 9]),
        ];
        let mut controller = Controller::new(segments.clone(), ControllerConfig::default(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..10 {
            let sample = controller.sample(&mut rng);
            controller.feedback(&sample, 0.1 * i as f64);
        }
        let state = controller.export_state();
        let decoded = controller_state_from_value(&controller_state_to_value(&state)).unwrap();
        assert_eq!(decoded, state);
        // And a fresh (pre-update) state with its `None` accumulators.
        let fresh = Controller::new(segments, ControllerConfig::default(), 5).export_state();
        let decoded = controller_state_from_value(&controller_state_to_value(&fresh)).unwrap();
        assert_eq!(decoded, fresh);
    }

    #[test]
    fn solution_round_trips_including_infinite_metrics() {
        let workload = Workload::w1();
        let mut solution = sample_solution(3, true);
        let decoded = solution_from_value(&solution_to_value(&solution), &workload).unwrap();
        assert_eq!(decoded, solution);
        // Infeasible mappings carry INFINITY metrics; they must survive.
        solution.evaluation.metrics = HardwareMetrics::infeasible();
        solution.evaluation.mapping_feasible = false;
        let decoded = solution_from_value(&solution_to_value(&solution), &workload).unwrap();
        assert_eq!(decoded, solution);
    }

    #[test]
    fn outcome_round_trips_by_replaying_records() {
        let workload = Workload::w1();
        let mut outcome = SearchOutcome::empty();
        outcome.record(sample_solution(0, false));
        outcome.record(sample_solution(1, true));
        outcome.record(sample_solution(2, true));
        outcome.episodes = 3;
        outcome.pruned_episodes = 1;
        outcome.reward_history = vec![0.1, 0.2, 0.3];
        outcome.phases.push(PhaseSummary {
            name: "nas".to_string(),
            episodes: 3,
            explored: 3,
            spec_compliant: 2,
            best_weighted_accuracy: Some(0.9),
            detail: "details".to_string(),
        });
        let decoded = outcome_from_value(&outcome_to_value(&outcome), &workload).unwrap();
        assert_eq!(decoded, outcome);
    }

    #[test]
    fn file_sink_writes_parseable_checkpoints() {
        let dir = std::env::temp_dir().join("nasaic-checkpoint-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let sink = FileCheckpointSink::new(&path, 2);
        assert!(!sink.wants(1));
        assert!(sink.wants(2));
        let checkpoint = SearchCheckpoint::new("hill-climb", 3, 2, ConfigValue::table());
        sink.on_checkpoint(&checkpoint);
        assert!(sink.take_error().is_none());
        let read = SearchCheckpoint::parse_json(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(read, checkpoint);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn strided_merge_replays_solutions_in_global_order() {
        let plan = ShardPlan::strided("monte-carlo", 2, 4);
        assert!(plan.assigns(0, 0) && plan.assigns(2, 0));
        assert!(plan.assigns(1, 1) && plan.assigns(3, 1));
        let solutions: Vec<_> = (0..4).map(|i| sample_solution(i, i % 2 == 1)).collect();
        let mut reference = SearchOutcome::empty();
        for solution in &solutions {
            reference.record(solution.clone());
        }
        reference.episodes = 4;
        let mut shard0 = ShardPartial::empty("monte-carlo", 2, 0);
        let mut shard1 = ShardPartial::empty("monte-carlo", 2, 1);
        for (i, solution) in solutions.into_iter().enumerate() {
            let target = if i % 2 == 0 { &mut shard0 } else { &mut shard1 };
            target.solutions.push((i, solution));
        }
        shard0.episodes = 4;
        shard1.episodes = 4;
        // Merge accepts partials in any order.
        let merged = merge_replay(&plan, vec![shard1, shard0]);
        assert_eq!(merged, reference);
    }

    #[test]
    fn sequential_merge_short_circuits_to_shard_zero() {
        let plan = ShardPlan::sequential("nasaic", 3);
        let mut outcome = SearchOutcome::empty();
        outcome.record(sample_solution(0, true));
        outcome.episodes = 1;
        let partials = vec![
            ShardPartial::completed("nasaic", 3, outcome.clone()),
            ShardPartial::empty("nasaic", 3, 1),
            ShardPartial::empty("nasaic", 3, 2),
        ];
        assert_eq!(merge_replay(&plan, partials), outcome);
    }

    #[test]
    fn shard_partial_round_trips_through_json() {
        let workload = Workload::w1();
        let mut partial = ShardPartial::empty("nas-then-asic", 2, 1);
        partial.solutions.push((3, sample_solution(3, true)));
        partial.episodes = 6;
        partial.phases.push(PhaseSummary {
            name: "nas".to_string(),
            episodes: 2,
            explored: 2,
            spec_compliant: 0,
            best_weighted_accuracy: None,
            detail: "archs".to_string(),
        });
        let parsed = ShardPartial::parse_json(&partial.to_json(), &workload).unwrap();
        assert_eq!(parsed, partial);
        // And the complete-outcome form.
        let mut outcome = SearchOutcome::empty();
        outcome.record(sample_solution(0, false));
        let complete = ShardPartial::completed("nasaic", 2, outcome);
        let parsed = ShardPartial::parse_json(&complete.to_json(), &workload).unwrap();
        assert_eq!(parsed, complete);
    }
}
