//! Deterministic scoped-thread fan-out used by the evaluation engine and
//! the experiment harness.
//!
//! [`parallel_map`] preserves input order in its output regardless of
//! thread scheduling, so callers that evaluate in parallel and *consume*
//! sequentially (the NASAIC episode loop, the baselines, the experiment
//! fan-outs) stay bit-deterministic.  Work distribution is a shared atomic
//! cursor, which balances uneven item costs (e.g. schedulable vs
//! unschedulable candidates) better than static chunking.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `len` items under a configured
/// ceiling (`0` = use the machine's available parallelism).
pub fn worker_count(configured: usize, len: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let ceiling = if configured == 0 {
        hardware
    } else {
        configured
    };
    ceiling.min(len).max(1)
}

/// Map `f` over `items`, fanning out over up to `threads` scoped threads.
///
/// The output vector's order matches `items`; with `threads <= 1` (or one
/// item) the map runs inline with no thread machinery at all.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count(threads, items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let drain = |produced: &mut Vec<(usize, R)>| loop {
        let index = cursor.fetch_add(1, Ordering::Relaxed);
        if index >= items.len() {
            break;
        }
        produced.push((index, f(&items[index])));
    };

    // The calling thread is one of the workers, so a batch of `w` workers
    // only pays `w - 1` thread spawns (and a 2-worker batch just one).
    let mut local: Vec<(usize, R)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers - 1);
        for _ in 0..workers - 1 {
            let drain = &drain;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, R)> = Vec::new();
                drain(&mut produced);
                produced
            }));
        }
        drain(&mut local);
        for handle in handles {
            local.extend(handle.join().expect("engine worker panicked"));
        }
    });
    for (index, result) in local {
        slots[index] = Some(result);
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every index was produced exactly once"))
        .collect()
}

/// Split a thread budget across `branches` concurrent consumers (the
/// experiment harness fans out searches whose engines are themselves
/// parallel; giving each branch `available / branches` workers keeps the
/// nest from oversubscribing the machine).
pub fn divided_threads(branches: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (hardware / branches.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let a = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let b = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41u32], 8, |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_is_bounded_by_items_and_config() {
        assert_eq!(worker_count(4, 2), 2);
        assert_eq!(worker_count(2, 100), 2);
        assert!(worker_count(0, 100) >= 1);
        assert_eq!(worker_count(8, 0), 1);
    }
}
