//! The shared evaluation engine: memoised, batch-parallel candidate
//! evaluation for the search loop, the baselines and the experiment
//! harness.
//!
//! Profiling the NASAIC loop shows essentially all wall-clock time goes to
//! the evaluator: every episode re-derives the (layer × sub-accelerator)
//! cost table for `1 + φ` hardware designs and re-queries the accuracy
//! oracle, and every baseline used to run its own serial evaluate-and-track
//! loop.  [`EvalEngine`] wraps an [`Evaluator`] with:
//!
//! * an **accuracy cache** keyed by the decoded architecture (per task), so
//!   an episode's `φ` hardware-only steps — and any later episode that
//!   revisits the same architecture — pay for accuracy once;
//! * a **hardware-metrics cache** keyed by `(architectures, accelerator)`,
//!   so replayed or revisited designs skip the cost-table build and the
//!   HAP solve;
//! * a **batch evaluator** that fans the independent candidate evaluations
//!   of an episode (or a baseline generation) out over scoped worker
//!   threads while keeping results in input order, so the strictly
//!   sequential controller feedback — and therefore
//!   `search_is_deterministic_for_a_seed` — is unaffected;
//! * **batch-level de-duplication**: identical candidates inside one batch
//!   (common in an episode's `1 + φ` designs when the controller resamples
//!   the same point) are evaluated once and the result is fanned back out
//!   to every occurrence in input order.  Duplicates are counted as cache
//!   hits — they would have hit both caches had they been evaluated after
//!   the first occurrence — so the stats stay honest and independent of
//!   whether dedup or the cache absorbed the repeat.
//!
//! Cached values are produced by the same pure functions the direct
//! [`Evaluator`] calls use, so engine results are **bit-identical** to
//! uncached evaluation (asserted by the `engine_consistency` integration
//! suite).

pub mod pool;

use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::checkpoint;
use crate::evaluator::{Evaluation, Evaluator};
use crate::penalty::Penalty;
use crate::reward::Reward;
use crate::scenario::value::{ConfigError, ConfigValue};
use crate::spec::SpecCheck;
use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
use nasaic_cost::HardwareMetrics;
use nasaic_nn::layer::Architecture;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

pub use pool::parallel_map;

/// Cache key for one task's accuracy query: the task position plus the
/// decoded architecture's identity (backbone name + hyperparameter values,
/// which fully determine the generated network).
type AccuracyKey = (usize, String, Vec<usize>);

/// Cache key for the hardware path: the latency spec the HAP solve runs
/// under, every architecture's identity, and the accelerator design (which
/// is `Hash + Eq` by construction).
///
/// The latency spec is constant for one engine (it comes from the wrapped
/// evaluator), but keying on it protects the *latency-spec* dimension even
/// if cache state is ever shared or serialized across engines: hardware
/// metrics depend on `specs.latency_cycles` through `solve_heuristic`'s
/// constraint, so two engines built for scenarios with different latency
/// specs can never be confused.  The evaluator's cost model — the other
/// input `hardware_metrics` depends on — is *not* part of the key (it has
/// no cheap hashable identity); per-engine caches make that safe today,
/// and `Scenario::run_algorithm_with_engine` rejects engines whose cost
/// model differs from the scenario's.
type HardwareKey = (u64, Vec<(String, Vec<usize>)>, Accelerator);

/// One row of the hardware-cache export: the cache key, the accelerator's
/// `(dataflow index, PEs, bandwidth)` triples (the sortable stand-in for
/// `Accelerator`, which has no `Ord`), and the cached metrics.
type HardwareExportRow = (HardwareKey, Vec<(usize, usize, usize)>, HardwareMetrics);

fn architectures_key(architectures: &[Architecture]) -> Vec<(String, Vec<usize>)> {
    architectures
        .iter()
        .map(|a| (a.name.clone(), a.hyperparameters.clone()))
        .collect()
}

/// Identity of one candidate inside a batch, for de-duplication.  Two
/// candidates with equal keys decode to the same architectures and the
/// same accelerator, so every evaluation path produces identical results
/// for them.  (No latency-spec component: a batch never crosses engines.)
type BatchKey = (Vec<(String, Vec<usize>)>, Accelerator);

fn batch_key(candidate: &Candidate) -> BatchKey {
    (
        architectures_key(&candidate.architectures),
        candidate.accelerator.clone(),
    )
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker-thread ceiling for batch evaluation; `0` uses the machine's
    /// available parallelism.
    pub threads: usize,
    /// When `false`, every call recomputes (useful for measuring the cache
    /// itself; the default is `true`).
    pub caching: bool,
    /// Accuracy-cache capacity in entries; `0` (the default) keeps the
    /// cache unbounded.  A full cache evicts its oldest entry (FIFO), which
    /// can only cost recomputation — cached values are pure, so eviction
    /// never changes a result.
    pub accuracy_capacity: usize,
    /// Hardware-metrics-cache capacity in entries; `0` (the default) keeps
    /// the cache unbounded.  Same FIFO eviction as `accuracy_capacity`.
    pub hardware_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            caching: true,
            accuracy_capacity: 0,
            hardware_capacity: 0,
        }
    }
}

/// A FIFO-bounded hash map: at most `capacity` resident entries (`0` =
/// unbounded), evicting the oldest insertion when full.
///
/// FIFO — rather than LRU — keeps the hot read path lock-friendly: a hit
/// needs only the [`RwLock`] read guard the unbounded map already used,
/// because hits never reorder anything.  Eviction is an optimisation
/// trade-off, never a correctness concern: cached values are pure functions
/// of their keys, so an evicted entry is recomputed bit-identically on the
/// next query (it just counts as a fresh miss).
#[derive(Debug)]
struct BoundedCache<K, V> {
    map: HashMap<K, V>,
    /// Insertion order of the resident keys; front = oldest.
    order: VecDeque<K>,
    /// `0` = unbounded.
    capacity: usize,
    evictions: u64,
}

impl<K: Clone + Eq + Hash, V> BoundedCache<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            evictions: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn evict_to_fit(&mut self) {
        if self.capacity == 0 {
            return;
        }
        while self.map.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                return;
            };
            if self.map.remove(&oldest).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Insert unless the key is already resident; returns `true` when the
    /// insert landed (the caller's miss) and `false` on an existing entry
    /// (the caller's hit).  Evicts the oldest entry first when at capacity.
    fn insert_if_absent(&mut self, key: K, value: V) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        self.evict_to_fit();
        self.order.push_back(key.clone());
        self.map.insert(key, value);
        true
    }

    /// Insert unconditionally: an existing entry's value is replaced in
    /// place (keeping its age); a new key evicts to fit like
    /// [`insert_if_absent`](Self::insert_if_absent).  Used by cache import,
    /// where colliding keys are guaranteed to carry equal values.
    fn force_insert(&mut self, key: K, value: V) {
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = value;
            return;
        }
        self.evict_to_fit();
        self.order.push_back(key.clone());
        self.map.insert(key, value);
    }
}

/// Cache behaviour counters (aggregated over both caches' lifetimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accuracy-cache hits (per task query).
    pub accuracy_hits: u64,
    /// Accuracy-cache misses (per task query).
    pub accuracy_misses: u64,
    /// Hardware-metrics-cache hits.
    pub hardware_hits: u64,
    /// Hardware-metrics-cache misses.
    pub hardware_misses: u64,
    /// Accuracy-cache size (a gauge: entries resident when the snapshot
    /// was taken, not a counter).
    pub accuracy_entries: u64,
    /// Hardware-metrics-cache size (a gauge, like `accuracy_entries`).
    pub hardware_entries: u64,
    /// Accuracy-cache evictions (a counter: entries dropped to respect
    /// [`EngineConfig::accuracy_capacity`]; always `0` when unbounded).
    pub accuracy_evictions: u64,
    /// Hardware-metrics-cache evictions (a counter, like
    /// `accuracy_evictions`).
    pub hardware_evictions: u64,
    /// Configured accuracy-cache capacity (a gauge; `0` = unbounded).
    pub accuracy_capacity: u64,
    /// Configured hardware-metrics-cache capacity (a gauge; `0` =
    /// unbounded).
    pub hardware_capacity: u64,
}

impl CacheStats {
    /// Fraction of all queries served from a cache.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.accuracy_hits + self.hardware_hits;
        let total = hits + self.accuracy_misses + self.hardware_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of accuracy queries served from the accuracy cache.
    pub fn accuracy_hit_rate(&self) -> f64 {
        let total = self.accuracy_hits + self.accuracy_misses;
        if total == 0 {
            0.0
        } else {
            self.accuracy_hits as f64 / total as f64
        }
    }

    /// Fraction of hardware queries served from the hardware cache.
    pub fn hardware_hit_rate(&self) -> f64 {
        let total = self.hardware_hits + self.hardware_misses;
        if total == 0 {
            0.0
        } else {
            self.hardware_hits as f64 / total as f64
        }
    }

    /// Total entries evicted from both caches.
    pub fn evictions(&self) -> u64 {
        self.accuracy_evictions + self.hardware_evictions
    }

    /// The counter delta since an earlier snapshot — the cache behaviour
    /// of just the work between the two [`EvalEngine::stats`] calls (used
    /// to report per-run rates on a long-lived shared engine).
    ///
    /// The entry and capacity gauges are not deltas: the later snapshot's
    /// values are kept as-is, since "entries at the end of the run" (and
    /// the configured bound) are the meaningful per-run figures.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accuracy_hits: self.accuracy_hits - earlier.accuracy_hits,
            accuracy_misses: self.accuracy_misses - earlier.accuracy_misses,
            hardware_hits: self.hardware_hits - earlier.hardware_hits,
            hardware_misses: self.hardware_misses - earlier.hardware_misses,
            accuracy_entries: self.accuracy_entries,
            hardware_entries: self.hardware_entries,
            accuracy_evictions: self.accuracy_evictions - earlier.accuracy_evictions,
            hardware_evictions: self.hardware_evictions - earlier.hardware_evictions,
            accuracy_capacity: self.accuracy_capacity,
            hardware_capacity: self.hardware_capacity,
        }
    }
}

/// Memoised, batch-parallel wrapper around an [`Evaluator`].
///
/// The engine is `Sync`: one instance is shared by reference across the
/// worker threads of a batch and across the stages of an experiment.
/// Results are bit-identical to direct `Evaluator` calls — caching and
/// parallelism change *when* a value is computed, never *what* it is.
///
/// # Example
///
/// ```
/// use nasaic_core::prelude::*;
///
/// let workload = Workload::w3();
/// let specs = DesignSpecs::for_workload(WorkloadId::W3);
/// let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
///
/// let architectures: Vec<_> = workload
///     .tasks
///     .iter()
///     .map(|task| task.backbone.smallest_architecture())
///     .collect();
/// let first = engine.accuracies(&architectures);
/// let again = engine.accuracies(&architectures);
/// assert_eq!(first, again); // bit-identical: caching never changes values
/// assert!(engine.stats().accuracy_hits > 0); // the second call was free
/// ```
#[derive(Debug)]
pub struct EvalEngine {
    evaluator: Evaluator,
    config: EngineConfig,
    accuracy_cache: RwLock<BoundedCache<AccuracyKey, f64>>,
    hardware_cache: RwLock<BoundedCache<HardwareKey, HardwareMetrics>>,
    accuracy_hits: AtomicU64,
    accuracy_misses: AtomicU64,
    hardware_hits: AtomicU64,
    hardware_misses: AtomicU64,
}

impl EvalEngine {
    /// Wrap an evaluator with the default engine configuration.
    pub fn new(evaluator: Evaluator) -> Self {
        Self::with_config(evaluator, EngineConfig::default())
    }

    /// Wrap an evaluator with an explicit configuration.
    pub fn with_config(evaluator: Evaluator, config: EngineConfig) -> Self {
        Self {
            evaluator,
            config,
            accuracy_cache: RwLock::new(BoundedCache::new(config.accuracy_capacity)),
            hardware_cache: RwLock::new(BoundedCache::new(config.hardware_capacity)),
            accuracy_hits: AtomicU64::new(0),
            accuracy_misses: AtomicU64::new(0),
            hardware_hits: AtomicU64::new(0),
            hardware_misses: AtomicU64::new(0),
        }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache behaviour counters so far, plus the current cache sizes and
    /// configured capacities.
    pub fn stats(&self) -> CacheStats {
        let accuracy = self.accuracy_cache.read().expect("accuracy cache lock");
        let hardware = self.hardware_cache.read().expect("hardware cache lock");
        CacheStats {
            accuracy_hits: self.accuracy_hits.load(Ordering::Relaxed),
            accuracy_misses: self.accuracy_misses.load(Ordering::Relaxed),
            hardware_hits: self.hardware_hits.load(Ordering::Relaxed),
            hardware_misses: self.hardware_misses.load(Ordering::Relaxed),
            accuracy_entries: accuracy.len() as u64,
            hardware_entries: hardware.len() as u64,
            accuracy_evictions: accuracy.evictions,
            hardware_evictions: hardware.evictions,
            accuracy_capacity: self.config.accuracy_capacity as u64,
            hardware_capacity: self.config.hardware_capacity as u64,
        }
    }

    /// Publish the engine's cache counters as labelled gauges on the
    /// global telemetry registry
    /// (`nasaic_engine_cache_{hits,misses,entries,evictions,hit_ratio}`
    /// with `engine` and `cache` labels).  Call it at natural sampling
    /// points — the serve daemon does after every job — and each scrape of
    /// the sampled gauges becomes one point of the per-engine time series.
    /// No-op while telemetry is disabled.
    pub fn publish_metrics(&self, engine_label: &str) {
        if !nasaic_telemetry::enabled() {
            return;
        }
        let stats = self.stats();
        let registry = nasaic_telemetry::global();
        for (cache, hits, misses, entries, evictions, ratio) in [
            (
                "accuracy",
                stats.accuracy_hits,
                stats.accuracy_misses,
                stats.accuracy_entries,
                stats.accuracy_evictions,
                stats.accuracy_hit_rate(),
            ),
            (
                "hardware",
                stats.hardware_hits,
                stats.hardware_misses,
                stats.hardware_entries,
                stats.hardware_evictions,
                stats.hardware_hit_rate(),
            ),
        ] {
            let labels: [(&str, &str); 2] = [("engine", engine_label), ("cache", cache)];
            registry
                .gauge("nasaic_engine_cache_hits", &labels)
                .set(hits as f64);
            registry
                .gauge("nasaic_engine_cache_misses", &labels)
                .set(misses as f64);
            registry
                .gauge("nasaic_engine_cache_entries", &labels)
                .set(entries as f64);
            registry
                .gauge("nasaic_engine_cache_evictions", &labels)
                .set(evictions as f64);
            registry
                .gauge("nasaic_engine_cache_hit_ratio", &labels)
                .set(ratio);
        }
    }

    /// Drop all cached values (counters are kept).
    pub fn clear_caches(&self) {
        self.accuracy_cache
            .write()
            .expect("accuracy cache lock")
            .clear();
        self.hardware_cache
            .write()
            .expect("hardware cache lock")
            .clear();
    }

    /// Export both memo caches as a serializable value, for warm-shard
    /// handoff: a shard (or a resumed run) can start from another engine's
    /// cache instead of cold.  Entries are sorted by key, so the export is
    /// deterministic regardless of hash-map iteration order.
    ///
    /// Because cached values are bit-identical to what the evaluator would
    /// recompute, importing a cache can never change a search outcome —
    /// only how much of it is served warm.
    pub fn export_caches(&self) -> ConfigValue {
        let mut accuracy: Vec<(AccuracyKey, f64)> = self
            .accuracy_cache
            .read()
            .expect("accuracy cache lock")
            .iter()
            .map(|(key, &value)| (key.clone(), value))
            .collect();
        accuracy.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hardware: Vec<HardwareExportRow> = self
            .hardware_cache
            .read()
            .expect("hardware cache lock")
            .iter()
            .map(|(key, &metrics)| {
                let subs: Vec<(usize, usize, usize)> = key
                    .2
                    .sub_accelerators()
                    .iter()
                    .map(|sub| (sub.dataflow.index(), sub.num_pes, sub.bandwidth_gbps))
                    .collect();
                (key.clone(), subs, metrics)
            })
            .collect();
        hardware.sort_by(|a, b| (a.0 .0, &a.0 .1, &a.1).cmp(&(b.0 .0, &b.0 .1, &b.1)));

        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(1));
        root.insert("accuracy_len", ConfigValue::Integer(accuracy.len() as i64));
        root.insert("hardware_len", ConfigValue::Integer(hardware.len() as i64));
        root.insert(
            "accuracy",
            ConfigValue::Array(
                accuracy
                    .into_iter()
                    .map(|((task, name, values), acc)| {
                        let mut entry = ConfigValue::table();
                        entry.insert("task", ConfigValue::Integer(task as i64));
                        entry.insert("name", ConfigValue::Str(name));
                        entry.insert("values", checkpoint::usizes_to_value(&values));
                        entry.insert("accuracy", checkpoint::float_to_value(acc));
                        entry
                    })
                    .collect(),
            ),
        );
        root.insert(
            "hardware",
            ConfigValue::Array(
                hardware
                    .into_iter()
                    .map(|((latency_bits, archs, _), subs, metrics)| {
                        let mut entry = ConfigValue::table();
                        entry.insert("latency_bits", ConfigValue::Integer(latency_bits as i64));
                        entry.insert(
                            "archs",
                            ConfigValue::Array(
                                archs
                                    .into_iter()
                                    .map(|(name, values)| {
                                        let mut arch = ConfigValue::table();
                                        arch.insert("name", ConfigValue::Str(name));
                                        arch.insert("values", checkpoint::usizes_to_value(&values));
                                        arch
                                    })
                                    .collect(),
                            ),
                        );
                        entry.insert(
                            "subs",
                            ConfigValue::Array(
                                subs.into_iter()
                                    .map(|(dataflow, pes, bandwidth)| {
                                        checkpoint::usizes_to_value(&[dataflow, pes, bandwidth])
                                    })
                                    .collect(),
                            ),
                        );
                        entry.insert(
                            "latency_cycles",
                            checkpoint::float_to_value(metrics.latency_cycles),
                        );
                        entry.insert("energy_nj", checkpoint::float_to_value(metrics.energy_nj));
                        entry.insert("area_um2", checkpoint::float_to_value(metrics.area_um2));
                        entry
                    })
                    .collect(),
            ),
        );
        root
    }

    /// Import cache entries written by [`export_caches`](Self::export_caches)
    /// into this engine's caches (existing entries are kept; imported keys
    /// overwrite on collision, which is harmless because values are pure
    /// functions of their keys).  Counters are untouched: imported entries
    /// count as neither hits nor misses until they are queried.  On a
    /// bounded cache the import respects the capacity — oldest entries are
    /// evicted like any other insert.
    ///
    /// The whole file is validated *before* anything is imported, so a
    /// failed import leaves the caches untouched.
    ///
    /// # Errors
    ///
    /// Returns a schema error naming the offending entry (e.g.
    /// `accuracy[3]`) for an unknown version, a declared length that does
    /// not match the actual array (a truncated or corrupted file), a task
    /// index out of range for this engine's workload (a stale export from
    /// another scenario), or an out-of-range value (accuracies outside
    /// `[0, 1]`, non-finite or negative hardware metrics).
    pub fn import_caches(&self, value: &ConfigValue) -> Result<(), ConfigError> {
        let version = value
            .get("version")
            .and_then(ConfigValue::as_integer)
            .ok_or_else(|| ConfigError::schema("cache export: missing version"))?;
        if version != 1 {
            return Err(ConfigError::schema(format!(
                "cache export: unsupported version {version}"
            )));
        }
        let entry_array = |key: &str| -> Result<&[ConfigValue], ConfigError> {
            let array = value
                .get(key)
                .and_then(ConfigValue::as_array)
                .ok_or_else(|| ConfigError::schema(format!("cache export: missing {key} array")))?;
            // `*_len` is written by every export; tolerate its absence (a
            // hand-built value) but when present it must match, so a
            // truncated file fails loudly instead of importing a prefix.
            if let Some(declared) = value
                .get(&format!("{key}_len"))
                .and_then(ConfigValue::as_integer)
            {
                if declared != array.len() as i64 {
                    return Err(ConfigError::schema(format!(
                        "cache export: {key} declares {declared} entries but holds {} \
                         (truncated or corrupted file?)",
                        array.len()
                    )));
                }
            }
            Ok(array)
        };
        let entry_str = |entry: &ConfigValue, at: &str, key: &str| -> Result<String, ConfigError> {
            entry
                .get(key)
                .and_then(ConfigValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| ConfigError::schema(format!("cache export: {at}: missing {key}")))
        };
        let entry_float =
            |entry: &ConfigValue, at: &str, key: &str| -> Result<f64, ConfigError> {
                checkpoint::float_from_value(entry.get(key).ok_or_else(|| {
                    ConfigError::schema(format!("cache export: {at}: missing {key}"))
                })?)
                .map_err(|err| ConfigError::schema(format!("cache export: {at}: {key}: {err}")))
            };

        let num_tasks = self.evaluator.workload().num_tasks();
        let mut accuracy_entries: Vec<(AccuracyKey, f64)> = Vec::new();
        for (index, entry) in entry_array("accuracy")?.iter().enumerate() {
            let at = format!("accuracy[{index}]");
            let task = entry
                .get("task")
                .and_then(ConfigValue::as_integer)
                .ok_or_else(|| ConfigError::schema(format!("cache export: {at}: missing task")))?;
            if task < 0 || task as usize >= num_tasks {
                return Err(ConfigError::schema(format!(
                    "cache export: {at}: task index {task} out of range for a \
                     {num_tasks}-task workload (stale export from another scenario?)"
                )));
            }
            let name = entry_str(entry, &at, "name")?;
            let values = checkpoint::usizes_from_value(entry.get("values").ok_or_else(|| {
                ConfigError::schema(format!("cache export: {at}: missing values"))
            })?)
            .map_err(|err| ConfigError::schema(format!("cache export: {at}: values: {err}")))?;
            let accuracy = entry_float(entry, &at, "accuracy")?;
            if !accuracy.is_finite() || !(0.0..=1.0).contains(&accuracy) {
                return Err(ConfigError::schema(format!(
                    "cache export: {at}: accuracy {accuracy} outside [0, 1]"
                )));
            }
            accuracy_entries.push(((task as usize, name, values), accuracy));
        }

        let mut hardware_entries: Vec<(HardwareKey, HardwareMetrics)> = Vec::new();
        for (index, entry) in entry_array("hardware")?.iter().enumerate() {
            let at = format!("hardware[{index}]");
            let latency_bits = entry
                .get("latency_bits")
                .and_then(ConfigValue::as_integer)
                .ok_or_else(|| {
                    ConfigError::schema(format!("cache export: {at}: missing latency_bits"))
                })? as u64;
            let mut archs = Vec::new();
            for arch in entry
                .get("archs")
                .and_then(ConfigValue::as_array)
                .ok_or_else(|| ConfigError::schema(format!("cache export: {at}: missing archs")))?
            {
                archs.push((
                    entry_str(arch, &at, "name")?,
                    checkpoint::usizes_from_value(arch.get("values").ok_or_else(|| {
                        ConfigError::schema(format!("cache export: {at}: missing values"))
                    })?)
                    .map_err(|err| {
                        ConfigError::schema(format!("cache export: {at}: values: {err}"))
                    })?,
                ));
            }
            let mut subs = Vec::new();
            for sub in entry
                .get("subs")
                .and_then(ConfigValue::as_array)
                .ok_or_else(|| ConfigError::schema(format!("cache export: {at}: missing subs")))?
            {
                let triple = checkpoint::usizes_from_value(sub).map_err(|err| {
                    ConfigError::schema(format!("cache export: {at}: subs: {err}"))
                })?;
                if triple.len() != 3 {
                    return Err(ConfigError::schema(format!(
                        "cache export: {at}: sub-accelerator triple must have 3 entries, \
                         found {}",
                        triple.len()
                    )));
                }
                let dataflow = Dataflow::from_index(triple[0]).ok_or_else(|| {
                    ConfigError::schema(format!(
                        "cache export: {at}: unknown dataflow index {}",
                        triple[0]
                    ))
                })?;
                subs.push(SubAccelerator::new(dataflow, triple[1], triple[2]));
            }
            let latency_cycles = entry_float(entry, &at, "latency_cycles")?;
            let energy_nj = entry_float(entry, &at, "energy_nj")?;
            let area_um2 = entry_float(entry, &at, "area_um2")?;
            // Metrics are non-negative; `+inf` is legitimate (the solver's
            // sentinel for an infeasible mapping), NaN never is.
            for (field, value) in [
                ("latency_cycles", latency_cycles),
                ("energy_nj", energy_nj),
                ("area_um2", area_um2),
            ] {
                if value.is_nan() || value < 0.0 {
                    return Err(ConfigError::schema(format!(
                        "cache export: {at}: {field} {value} is not a non-negative metric"
                    )));
                }
            }
            let metrics = HardwareMetrics::new(latency_cycles, energy_nj, area_um2);
            hardware_entries.push(((latency_bits, archs, Accelerator::new(subs)), metrics));
        }

        let mut accuracy_cache = self.accuracy_cache.write().expect("accuracy cache lock");
        for (key, value) in accuracy_entries {
            accuracy_cache.force_insert(key, value);
        }
        drop(accuracy_cache);
        let mut hardware_cache = self.hardware_cache.write().expect("hardware cache lock");
        for (key, value) in hardware_entries {
            hardware_cache.force_insert(key, value);
        }
        Ok(())
    }

    /// Accuracy of every architecture (training/validation path), memoised
    /// per `(task, architecture)`.
    pub fn accuracies(&self, architectures: &[Architecture]) -> Vec<f64> {
        if !self.config.caching {
            return self.evaluator.accuracies(architectures);
        }
        // The direct path zips tasks with architectures (truncating to the
        // shorter of the two); mirror that exactly.
        let num_tasks = self.evaluator.workload().num_tasks();
        architectures
            .iter()
            .take(num_tasks)
            .enumerate()
            .map(|(task_index, arch)| self.accuracy_for_task(task_index, arch))
            .collect()
    }

    /// Accuracy of `arch` evaluated as the workload's `task_index`-th task.
    /// Accuracy of one architecture evaluated as the workload's
    /// `task_index`-th task, memoised like [`accuracies`](Self::accuracies)
    /// (same cache, same keys).
    ///
    /// # Panics
    ///
    /// Panics if `task_index` is out of range for the workload.
    pub fn accuracy_for_task(&self, task_index: usize, arch: &Architecture) -> f64 {
        if !self.config.caching {
            return self.evaluator.accuracy_for_task(task_index, arch);
        }
        let key: AccuracyKey = (task_index, arch.name.clone(), arch.hyperparameters.clone());
        if let Some(&cached) = self
            .accuracy_cache
            .read()
            .expect("accuracy cache lock")
            .get(&key)
        {
            self.accuracy_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        // Compute outside the lock; concurrent workers racing on the same
        // key all produce the identical pure value.  Only the worker whose
        // insert lands counts as the miss, so with an unbounded cache the
        // stats stay independent of thread scheduling (misses == distinct
        // keys; a bounded cache can re-miss evicted keys).
        let accuracy = self.evaluator.accuracy_for_task(task_index, arch);
        if self
            .accuracy_cache
            .write()
            .expect("accuracy cache lock")
            .insert_if_absent(key, accuracy)
        {
            self.accuracy_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.accuracy_hits.fetch_add(1, Ordering::Relaxed);
        }
        accuracy
    }

    /// The weighted accuracy of Eq. 2 (pass-through; no caching needed).
    pub fn weighted_accuracy(&self, accuracies: &[f64]) -> f64 {
        self.evaluator.weighted_accuracy(accuracies)
    }

    /// Hardware metrics of a set of architectures on an accelerator,
    /// memoised by `(architectures, accelerator)`.
    pub fn hardware_metrics(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> HardwareMetrics {
        if !self.config.caching {
            return self.evaluator.hardware_metrics(architectures, accelerator);
        }
        let key = self.hardware_key(architectures, accelerator);
        if let Some(&cached) = self
            .hardware_cache
            .read()
            .expect("hardware cache lock")
            .get(&key)
        {
            self.hardware_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        // See `accuracy_for_task`: racers compute the same pure value and
        // only the landing insert counts as the miss.
        let metrics = self.evaluator.hardware_metrics(architectures, accelerator);
        if self
            .hardware_cache
            .write()
            .expect("hardware cache lock")
            .insert_if_absent(key, metrics)
        {
            self.hardware_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hardware_hits.fetch_add(1, Ordering::Relaxed);
        }
        metrics
    }

    fn hardware_key(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> HardwareKey {
        (
            self.evaluator.specs().latency_cycles.to_bits(),
            architectures_key(architectures),
            accelerator.clone(),
        )
    }

    /// `true` when the hardware cache already holds this design (a pure
    /// probe: no counters are touched).  Because the hardware key covers
    /// the full (architectures, accelerator) identity, a present entry
    /// implies the accuracy cache was populated by the same evaluation.
    fn hardware_cached(&self, candidate: &Candidate) -> bool {
        self.hardware_cache
            .read()
            .expect("hardware cache lock")
            .contains_key(&self.hardware_key(&candidate.architectures, &candidate.accelerator))
    }

    /// Hardware-only evaluation: metrics plus spec check.
    pub fn evaluate_hardware(
        &self,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> (HardwareMetrics, SpecCheck) {
        let _span = crate::metrics::maybe_time(crate::metrics::eval_candidate_wall);
        let metrics = self.hardware_metrics(architectures, accelerator);
        (metrics, self.evaluator.specs().check(&metrics))
    }

    /// Full evaluation of one candidate through the caches; bit-identical
    /// to [`Evaluator::evaluate`] (both paths assemble the record through
    /// [`Evaluator::assemble_evaluation`]).
    pub fn evaluate(&self, candidate: &Candidate) -> Evaluation {
        let _span = crate::metrics::maybe_time(crate::metrics::eval_candidate_wall);
        let accuracies = self.accuracies(&candidate.architectures);
        let metrics = self.hardware_metrics(&candidate.architectures, &candidate.accelerator);
        self.evaluator.assemble_evaluation(accuracies, metrics)
    }

    /// Evaluate a batch of independent candidates, fanning out over worker
    /// threads; the result order matches the input order.
    ///
    /// Identical candidates inside the batch are evaluated once: the batch
    /// is de-duplicated up front, only the distinct candidates go to the
    /// workers, and results fan back out to every occurrence.  Each
    /// suppressed duplicate is counted as the cache hits it would have
    /// scored — one hardware hit plus one accuracy hit per evaluated task —
    /// so the stats match what sequential evaluation through the caches
    /// would have recorded.  De-duplication is skipped (along with the
    /// caches) when [`EngineConfig::caching`] is off.
    pub fn evaluate_batch(&self, candidates: &[Candidate]) -> Vec<Evaluation> {
        if !self.config.caching || candidates.len() < 2 {
            return parallel_map(candidates, self.config.threads, |candidate| {
                self.evaluate(candidate)
            });
        }
        let num_tasks = self.evaluator.workload().num_tasks();
        let mut slot_of: HashMap<BatchKey, usize> = HashMap::new();
        let mut uniques: Vec<&Candidate> = Vec::with_capacity(candidates.len());
        let mut fan_out: Vec<usize> = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            match slot_of.entry(batch_key(candidate)) {
                Entry::Vacant(slot) => {
                    slot.insert(uniques.len());
                    fan_out.push(uniques.len());
                    uniques.push(candidate);
                }
                Entry::Occupied(slot) => {
                    fan_out.push(*slot.get());
                    // A duplicate evaluated after its first occurrence
                    // would have hit the hardware cache once and the
                    // accuracy cache once per task actually evaluated
                    // (`accuracies` truncates to the shorter of the
                    // architecture list and the task list).
                    let task_queries = candidate.architectures.len().min(num_tasks) as u64;
                    self.accuracy_hits
                        .fetch_add(task_queries, Ordering::Relaxed);
                    self.hardware_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if nasaic_telemetry::enabled() {
            crate::metrics::eval_batch_size().record(candidates.len() as u64);
            crate::metrics::eval_dedup_saved().add((candidates.len() - uniques.len()) as u64);
        }
        let unique_results = self.map_uniques(&uniques, |candidate| self.evaluate(candidate));
        fan_out
            .into_iter()
            .map(|slot| unique_results[slot].clone())
            .collect()
    }

    /// Evaluate each unique candidate of a batch, fanning only hardware
    /// cache *misses* out to worker threads: a cached candidate reduces to
    /// hash-map lookups, for which a thread spawn costs more than the work
    /// itself.  The partition is a pure scheduling decision — every
    /// candidate still goes through `eval`, so results and counter totals
    /// are identical to mapping the whole batch.
    fn map_uniques<R: Send>(
        &self,
        uniques: &[&Candidate],
        eval: impl Fn(&Candidate) -> R + Sync,
    ) -> Vec<R> {
        let misses: Vec<usize> = (0..uniques.len())
            .filter(|&i| !self.hardware_cached(uniques[i]))
            .collect();
        let mut results: Vec<Option<R>> = Vec::with_capacity(uniques.len());
        results.resize_with(uniques.len(), || None);
        if misses.len() > 1 {
            let computed = parallel_map(&misses, self.config.threads, |&i| eval(uniques[i]));
            for (&i, result) in misses.iter().zip(computed) {
                results[i] = Some(result);
            }
        } else {
            for &i in &misses {
                results[i] = Some(eval(uniques[i]));
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| eval(uniques[i])))
            .collect()
    }

    /// Hardware-evaluate one episode's candidates (`None` marks a sample
    /// that failed to decode), in parallel, preserving order.
    ///
    /// Like [`evaluate_batch`](Self::evaluate_batch), identical decodable
    /// candidates are evaluated once and each suppressed duplicate counts
    /// as the single hardware-cache hit it would have scored (the hardware
    /// path never queries the accuracy cache).
    pub fn evaluate_hardware_batch(
        &self,
        candidates: &[Option<Candidate>],
    ) -> Vec<Option<(HardwareMetrics, SpecCheck)>> {
        if !self.config.caching || candidates.len() < 2 {
            return parallel_map(candidates, self.config.threads, |candidate| {
                candidate
                    .as_ref()
                    .map(|c| self.evaluate_hardware(&c.architectures, &c.accelerator))
            });
        }
        let mut slot_of: HashMap<BatchKey, usize> = HashMap::new();
        let mut uniques: Vec<&Candidate> = Vec::with_capacity(candidates.len());
        // `None` fans out an undecodable slot; `Some(i)` the i-th unique.
        let mut fan_out: Vec<Option<usize>> = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let Some(candidate) = candidate.as_ref() else {
                fan_out.push(None);
                continue;
            };
            match slot_of.entry(batch_key(candidate)) {
                Entry::Vacant(slot) => {
                    slot.insert(uniques.len());
                    fan_out.push(Some(uniques.len()));
                    uniques.push(candidate);
                }
                Entry::Occupied(slot) => {
                    fan_out.push(Some(*slot.get()));
                    self.hardware_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if nasaic_telemetry::enabled() {
            crate::metrics::eval_batch_size().record(candidates.len() as u64);
            let decodable = fan_out.iter().filter(|slot| slot.is_some()).count();
            crate::metrics::eval_dedup_saved().add((decodable - uniques.len()) as u64);
        }
        let unique_results = self.map_uniques(&uniques, |candidate| {
            self.evaluate_hardware(&candidate.architectures, &candidate.accelerator)
        });
        fan_out
            .into_iter()
            .map(|slot| slot.map(|i| unique_results[i]))
            .collect()
    }

    /// A scorer binding this engine to penalty bounds and a penalty scale,
    /// replacing the per-baseline `reward_of` closures.
    pub fn scorer(&self, bounds: PenaltyBounds, rho: f64) -> RewardScorer<'_> {
        RewardScorer {
            engine: self,
            bounds,
            rho,
        }
    }
}

impl From<&Evaluator> for EvalEngine {
    fn from(evaluator: &Evaluator) -> Self {
        Self::new(evaluator.clone())
    }
}

impl Clone for EvalEngine {
    /// Cloning keeps the evaluator and configuration but starts with cold
    /// caches (cached values are an optimisation, not state).
    fn clone(&self) -> Self {
        Self::with_config(self.evaluator.clone(), self.config)
    }
}

/// Eq. 4 scoring on top of the engine: evaluation plus scalar reward.
///
/// This is the evaluate-and-score plumbing that the hill-climbing,
/// evolutionary and hardware-aware-NAS optimizers used to reimplement
/// separately.
#[derive(Debug, Clone, Copy)]
pub struct RewardScorer<'a> {
    engine: &'a EvalEngine,
    bounds: PenaltyBounds,
    rho: f64,
}

impl RewardScorer<'_> {
    /// The engine behind the scorer.
    pub fn engine(&self) -> &EvalEngine {
        self.engine
    }

    /// Full evaluation plus the Eq. 4 reward of one candidate.
    pub fn score(&self, candidate: &Candidate) -> (Evaluation, f64) {
        let evaluation = self.engine.evaluate(candidate);
        let penalty = Penalty::compute(
            &evaluation.metrics,
            self.engine.evaluator().specs(),
            &self.bounds,
        );
        let reward = Reward::new(evaluation.weighted_accuracy, &penalty, self.rho).value();
        (evaluation, reward)
    }

    /// Score a batch of candidates in parallel, preserving order.
    pub fn score_batch(&self, candidates: &[Candidate]) -> Vec<(Evaluation, f64)> {
        parallel_map(candidates, self.engine.config.threads, |candidate| {
            self.score(candidate)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyOracle;
    use crate::spec::{DesignSpecs, WorkloadId};
    use crate::workload::Workload;
    use nasaic_accel::HardwareSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w1_engine() -> EvalEngine {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()))
    }

    fn random_candidates(count: usize, seed: u64) -> Vec<Candidate> {
        let workload = Workload::w1();
        let hardware = HardwareSpace::paper_default(2);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let architectures = workload
                    .tasks
                    .iter()
                    .map(|t| {
                        let space = t.backbone.search_space();
                        t.backbone
                            .materialize(&space.sample(&mut rng))
                            .expect("valid sample")
                    })
                    .collect();
                Candidate::from_parts(architectures, hardware.sample(&mut rng))
            })
            .collect()
    }

    #[test]
    fn engine_matches_direct_evaluator_bit_for_bit() {
        let engine = w1_engine();
        for candidate in random_candidates(12, 7) {
            let direct = engine.evaluator().evaluate(&candidate);
            let cold = engine.evaluate(&candidate);
            let warm = engine.evaluate(&candidate);
            assert_eq!(direct, cold);
            assert_eq!(direct, warm);
        }
    }

    #[test]
    fn repeated_candidates_hit_the_caches() {
        let engine = w1_engine();
        let candidates = random_candidates(6, 11);
        engine.evaluate_batch(&candidates);
        let cold = engine.stats();
        assert_eq!(cold.hardware_hits, 0);
        assert_eq!(cold.hardware_misses, 6);
        engine.evaluate_batch(&candidates);
        let warm = engine.stats();
        assert_eq!(warm.hardware_hits, 6);
        assert_eq!(warm.hardware_misses, 6);
        assert_eq!(warm.accuracy_hits, 12);
        assert!(warm.hit_rate() > 0.4);
    }

    #[test]
    fn exported_caches_warm_a_fresh_engine() {
        let warm = w1_engine();
        let candidates = random_candidates(8, 23);
        let expected = warm.evaluate_batch(&candidates);

        // Export is deterministic (entries are sorted, not hash-ordered)
        // and survives the JSON round trip.
        let export = warm.export_caches();
        assert_eq!(export, warm.export_caches());
        let text = crate::scenario::value::to_json(&export);
        let parsed = crate::scenario::value::parse_json(&text).expect("exported cache parses");
        assert_eq!(export, parsed);

        // A fresh engine with the import serves the whole stream from the
        // caches, bit-identically.
        let fresh = w1_engine();
        fresh.import_caches(&parsed).expect("import succeeds");
        let stats = fresh.stats();
        assert_eq!(stats.accuracy_entries, warm.stats().accuracy_entries);
        assert_eq!(stats.hardware_entries, warm.stats().hardware_entries);
        let served = fresh.evaluate_batch(&candidates);
        assert_eq!(expected, served);
        let stats = fresh.stats();
        assert_eq!(stats.hardware_misses, 0, "imported cache missed");
        assert_eq!(stats.accuracy_misses, 0, "imported cache missed");
        assert_eq!(stats.hardware_hits, 8);
    }

    #[test]
    fn importing_a_cache_never_changes_results() {
        // Import into an engine that then sees *different* candidates: the
        // foreign entries must be inert for them.
        let donor = w1_engine();
        donor.evaluate_batch(&random_candidates(5, 31));
        let export = donor.export_caches();

        let engine = w1_engine();
        engine.import_caches(&export).expect("import succeeds");
        for candidate in random_candidates(6, 37) {
            assert_eq!(
                engine.evaluate(&candidate),
                engine.evaluator().evaluate(&candidate)
            );
        }
    }

    #[test]
    fn import_rejects_unknown_versions() {
        let engine = w1_engine();
        let mut bad = engine.export_caches();
        bad.insert("version", ConfigValue::Integer(99));
        assert!(engine.import_caches(&bad).is_err());
    }

    #[test]
    fn bounded_caches_evict_and_stay_bit_identical() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let bounded = EvalEngine::with_config(
            evaluator.clone(),
            EngineConfig {
                threads: 1,
                accuracy_capacity: 2,
                hardware_capacity: 2,
                ..EngineConfig::default()
            },
        );
        let candidates = random_candidates(8, 53);
        for candidate in &candidates {
            assert_eq!(bounded.evaluate(candidate), evaluator.evaluate(candidate));
        }
        let stats = bounded.stats();
        assert!(stats.accuracy_evictions > 0, "tiny bound must evict");
        assert!(stats.hardware_evictions > 0, "tiny bound must evict");
        assert!(stats.accuracy_entries <= 2);
        assert!(stats.hardware_entries <= 2);
        assert_eq!(stats.accuracy_capacity, 2);
        assert_eq!(stats.hardware_capacity, 2);
        assert!(stats.evictions() >= stats.accuracy_evictions);
        // Evicted keys simply re-miss and recompute bit-identically.
        for candidate in &candidates {
            assert_eq!(bounded.evaluate(candidate), evaluator.evaluate(candidate));
        }
        // An unbounded engine never evicts.
        let unbounded = w1_engine();
        unbounded.evaluate_batch(&candidates);
        assert_eq!(unbounded.stats().evictions(), 0);
    }

    #[test]
    fn import_respects_cache_bounds() {
        let donor = w1_engine();
        donor.evaluate_batch(&random_candidates(8, 59));
        let export = donor.export_caches();

        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let bounded = EvalEngine::with_config(
            Evaluator::new(&workload, specs, AccuracyOracle::default()),
            EngineConfig {
                accuracy_capacity: 3,
                hardware_capacity: 3,
                ..EngineConfig::default()
            },
        );
        bounded.import_caches(&export).expect("import succeeds");
        let stats = bounded.stats();
        assert!(stats.accuracy_entries <= 3);
        assert!(stats.hardware_entries <= 3);
    }

    #[test]
    fn import_rejects_truncated_files() {
        let engine = w1_engine();
        engine.evaluate_batch(&random_candidates(4, 61));
        let mut bad = engine.export_caches();
        // Claim more entries than the array holds, as a truncated write
        // would.
        bad.insert("accuracy_len", ConfigValue::Integer(9999));
        let err = engine.import_caches(&bad).expect_err("must reject");
        let message = err.to_string();
        assert!(
            message.contains("9999") && message.contains("truncated"),
            "unhelpful error: {message}"
        );
    }

    fn export_with_accuracy_entry(entry: ConfigValue) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(1));
        root.insert("accuracy", ConfigValue::Array(vec![entry]));
        root.insert("hardware", ConfigValue::Array(Vec::new()));
        root
    }

    fn bad_accuracy_entry(task: i64, accuracy: f64) -> ConfigValue {
        let mut entry = ConfigValue::table();
        entry.insert("task", ConfigValue::Integer(task));
        entry.insert("name", ConfigValue::Str("resnet".to_string()));
        entry.insert("values", checkpoint::usizes_to_value(&[1, 2]));
        entry.insert("accuracy", checkpoint::float_to_value(accuracy));
        entry
    }

    #[test]
    fn import_names_the_offending_entry() {
        let engine = w1_engine();

        // Task index beyond the workload: a stale export from some other
        // scenario must not import silently-inert (or worse, wrapping)
        // keys.
        let stale = export_with_accuracy_entry(bad_accuracy_entry(7, 0.5));
        let message = engine
            .import_caches(&stale)
            .expect_err("must reject")
            .to_string();
        assert!(
            message.contains("accuracy[0]") && message.contains("out of range"),
            "unhelpful error: {message}"
        );

        // A negative task index used to wrap through `as usize`.
        let negative = export_with_accuracy_entry(bad_accuracy_entry(-1, 0.5));
        assert!(engine.import_caches(&negative).is_err());

        // Garbage values are named, not imported.
        let garbage = export_with_accuracy_entry(bad_accuracy_entry(0, f64::NAN));
        let message = engine
            .import_caches(&garbage)
            .expect_err("must reject")
            .to_string();
        assert!(
            message.contains("accuracy[0]"),
            "unhelpful error: {message}"
        );
        let oversized = export_with_accuracy_entry(bad_accuracy_entry(0, 1.5));
        assert!(engine.import_caches(&oversized).is_err());

        // A failed import leaves the engine untouched.
        assert_eq!(engine.stats().accuracy_entries, 0);
        assert_eq!(engine.stats().hardware_entries, 0);
    }

    #[test]
    fn duplicated_batch_matches_undeduped_path_and_counts_hits() {
        let engine = w1_engine();
        let distinct = random_candidates(3, 19);
        // 8 slots over 3 distinct candidates, duplicates interleaved.
        let batch: Vec<Candidate> = [0, 1, 0, 2, 2, 1, 0, 2]
            .iter()
            .map(|&i| distinct[i].clone())
            .collect();
        let deduped = engine.evaluate_batch(&batch);
        // Bit-identical to evaluating every slot directly, in order.
        let direct: Vec<_> = batch
            .iter()
            .map(|c| engine.evaluator().evaluate(c))
            .collect();
        assert_eq!(deduped, direct);
        // 3 unique evaluations, 5 suppressed duplicates; each duplicate
        // counts one hardware hit and one accuracy hit per task (w1 has
        // two tasks).
        let stats = engine.stats();
        assert_eq!(stats.hardware_misses, 3);
        assert_eq!(stats.hardware_hits, 5);
        assert_eq!(stats.accuracy_misses, 6);
        assert_eq!(stats.accuracy_hits, 10);
        // The gauges report resident entries, which after one batch equal
        // the misses.
        assert_eq!(stats.accuracy_entries, stats.accuracy_misses);
        assert_eq!(stats.hardware_entries, stats.hardware_misses);
    }

    #[test]
    fn duplicated_hardware_batch_matches_undeduped_path() {
        let engine = w1_engine();
        let distinct = random_candidates(2, 43);
        let mut slots: Vec<Option<Candidate>> = vec![
            Some(distinct[0].clone()),
            None,
            Some(distinct[1].clone()),
            Some(distinct[0].clone()),
            Some(distinct[0].clone()),
            None,
            Some(distinct[1].clone()),
        ];
        let deduped = engine.evaluate_hardware_batch(&slots);
        let direct: Vec<_> = slots
            .iter()
            .map(|slot| {
                slot.as_ref().map(|c| {
                    let metrics = engine
                        .evaluator()
                        .hardware_metrics(&c.architectures, &c.accelerator);
                    (metrics, engine.evaluator().specs().check(&metrics))
                })
            })
            .collect();
        assert_eq!(deduped, direct);
        // 2 unique evaluations, 3 suppressed duplicates; the hardware-only
        // path never touches the accuracy cache.
        let stats = engine.stats();
        assert_eq!(stats.hardware_misses, 2);
        assert_eq!(stats.hardware_hits, 3);
        assert_eq!(stats.accuracy_hits + stats.accuracy_misses, 0);
        // A batch of only undecodable slots is a no-op.
        slots.retain(|slot| slot.is_none());
        assert_eq!(engine.evaluate_hardware_batch(&slots), vec![None, None]);
        assert_eq!(engine.stats(), stats);
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let engine = w1_engine();
        let candidates = random_candidates(9, 13);
        let batch = engine.evaluate_batch(&candidates);
        let serial: Vec<_> = candidates
            .iter()
            .map(|c| engine.evaluator().evaluate(c))
            .collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn hardware_batch_keeps_undecodable_slots() {
        let engine = w1_engine();
        let mut slots: Vec<Option<Candidate>> =
            random_candidates(3, 17).into_iter().map(Some).collect();
        slots.insert(1, None);
        let results = engine.evaluate_hardware_batch(&slots);
        assert_eq!(results.len(), 4);
        assert!(results[1].is_none());
        assert!(results[0].is_some() && results[2].is_some() && results[3].is_some());
    }

    #[test]
    fn disabling_caching_still_matches_direct_results() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::with_config(
            evaluator.clone(),
            EngineConfig {
                caching: false,
                ..EngineConfig::default()
            },
        );
        for candidate in random_candidates(4, 23) {
            assert_eq!(engine.evaluate(&candidate), evaluator.evaluate(&candidate));
        }
        // Batch dedup is part of the caching machinery: with caching off a
        // duplicated batch is evaluated slot by slot and counts nothing.
        let repeated = vec![random_candidates(1, 47).remove(0); 3];
        let batch = engine.evaluate_batch(&repeated);
        assert_eq!(batch[0], evaluator.evaluate(&repeated[0]));
        assert_eq!(batch[0], batch[1]);
        assert_eq!(batch[0], batch[2]);
        let stats = engine.stats();
        assert_eq!(stats.hardware_hits + stats.hardware_misses, 0);
        assert_eq!(stats.accuracy_hits + stats.accuracy_misses, 0);
    }

    #[test]
    fn clearing_caches_keeps_results_identical() {
        let engine = w1_engine();
        let candidates = random_candidates(3, 29);
        let before = engine.evaluate_batch(&candidates);
        engine.clear_caches();
        let after = engine.evaluate_batch(&candidates);
        assert_eq!(before, after);
    }

    #[test]
    fn clone_starts_cold_but_agrees() {
        let engine = w1_engine();
        let candidates = random_candidates(2, 31);
        let original = engine.evaluate_batch(&candidates);
        let cloned = engine.clone();
        assert_eq!(cloned.stats().hardware_misses, 0);
        assert_eq!(cloned.evaluate_batch(&candidates), original);
    }

    #[test]
    fn hardware_metrics_depend_on_the_latency_spec() {
        // Hardware metrics solve the HAP under the evaluator's latency
        // spec, which is why the hardware cache key carries the spec: two
        // engines differing only in `latency_cycles` must each serve their
        // own evaluator's mapping for the same (architectures, accelerator)
        // query.
        let workload = Workload::w1();
        let tight_specs = DesignSpecs::for_workload(WorkloadId::W1);
        let mut loose_specs = tight_specs;
        loose_specs.latency_cycles *= 100.0;
        let tight = EvalEngine::new(Evaluator::new(
            &workload,
            tight_specs,
            AccuracyOracle::default(),
        ));
        let loose = EvalEngine::new(Evaluator::new(
            &workload,
            loose_specs,
            AccuracyOracle::default(),
        ));
        let mut some_metrics_differ = false;
        for candidate in random_candidates(8, 41) {
            let from_tight =
                tight.hardware_metrics(&candidate.architectures, &candidate.accelerator);
            let from_loose =
                loose.hardware_metrics(&candidate.architectures, &candidate.accelerator);
            // Every engine serves exactly its own evaluator's result.
            assert_eq!(
                from_tight,
                tight
                    .evaluator()
                    .hardware_metrics(&candidate.architectures, &candidate.accelerator)
            );
            assert_eq!(
                from_loose,
                loose
                    .evaluator()
                    .hardware_metrics(&candidate.architectures, &candidate.accelerator)
            );
            some_metrics_differ |= from_tight != from_loose;
        }
        assert!(
            some_metrics_differ,
            "a 100x latency spec change should alter at least one mapping"
        );
    }

    #[test]
    fn scorer_reward_matches_manual_composition() {
        let engine = w1_engine();
        let specs = *engine.evaluator().specs();
        let bounds = PenaltyBounds::from_specs(&specs, 3.0);
        let scorer = engine.scorer(bounds, 10.0);
        for candidate in random_candidates(5, 37) {
            let (evaluation, reward) = scorer.score(&candidate);
            let penalty = Penalty::compute(&evaluation.metrics, &specs, &bounds);
            let expected = Reward::new(evaluation.weighted_accuracy, &penalty, 10.0).value();
            assert_eq!(reward, expected);
        }
    }
}
