//! Upper bounds used to normalise the penalty (Eq. 3).
//!
//! The paper obtains `bl`, `be`, `ba` — the upper bounds of latency, energy
//! and area — "by exploring the hardware design space using the neural
//! architecture identified by NAS" (the circles of Fig. 1).
//! [`PenaltyBounds::estimate`] reproduces that procedure: it evaluates the
//! accuracy-optimal (largest-capacity) architectures of the workload on a
//! set of randomly sampled hardware designs and records the worst metric
//! values observed.

use crate::engine::EvalEngine;
use crate::evaluator::Evaluator;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_nn::layer::Architecture;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Normalisation bounds for the penalty terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyBounds {
    /// Upper bound of latency (`bl`), cycles.
    pub latency_cycles: f64,
    /// Upper bound of energy (`be`), nJ.
    pub energy_nj: f64,
    /// Upper bound of area (`ba`), µm².
    pub area_um2: f64,
}

impl PenaltyBounds {
    /// Estimate the bounds by evaluating the largest architectures of the
    /// workload on `samples` random hardware designs (the paper's
    /// NAS-architecture hardware sweep).  The returned bounds are never
    /// smaller than twice the corresponding spec, so the penalty
    /// normalisation is always well defined.
    pub fn estimate(
        workload: &Workload,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
        specs: &DesignSpecs,
        samples: usize,
        seed: u64,
    ) -> Self {
        Self::estimate_with_engine(
            workload,
            hardware,
            &EvalEngine::from(evaluator),
            specs,
            samples,
            seed,
        )
    }

    /// [`estimate`](Self::estimate) through a shared [`EvalEngine`]: the
    /// hardware sweep is evaluated as one parallel batch and its metrics
    /// land in the engine's cache, where the subsequent search can reuse
    /// them.
    pub fn estimate_with_engine(
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        specs: &DesignSpecs,
        samples: usize,
        seed: u64,
    ) -> Self {
        let architectures: Vec<Architecture> = workload
            .tasks
            .iter()
            .map(|t| t.backbone.largest_architecture())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let accelerators: Vec<_> = (0..samples.max(1))
            .map(|_| hardware.sample_fully_allocated(&mut rng))
            .collect();
        let metrics =
            crate::engine::parallel_map(&accelerators, engine.config().threads, |accelerator| {
                engine.hardware_metrics(&architectures, accelerator)
            });
        let mut worst_latency: f64 = 0.0;
        let mut worst_energy: f64 = 0.0;
        let mut worst_area: f64 = 0.0;
        for metrics in metrics {
            if metrics.latency_cycles.is_finite() {
                worst_latency = worst_latency.max(metrics.latency_cycles);
            }
            if metrics.energy_nj.is_finite() {
                worst_energy = worst_energy.max(metrics.energy_nj);
            }
            if metrics.area_um2.is_finite() {
                worst_area = worst_area.max(metrics.area_um2);
            }
        }
        // Clamp the bounds into [2x, 5x] of the specs: the lower clamp keeps
        // the normalisation well defined, the upper clamp keeps the penalty
        // slope meaningful even when the accuracy-optimal architectures are
        // orders of magnitude over the specs (e.g. the largest STL-10
        // networks of W2), which would otherwise flatten the reward signal.
        Self {
            latency_cycles: worst_latency
                .clamp(2.0 * specs.latency_cycles, 5.0 * specs.latency_cycles),
            energy_nj: worst_energy.clamp(2.0 * specs.energy_nj, 5.0 * specs.energy_nj),
            area_um2: worst_area.clamp(2.0 * specs.area_um2, 5.0 * specs.area_um2),
        }
    }

    /// Fixed bounds at a multiple of the specs (cheap alternative to
    /// [`estimate`](Self::estimate) for quick demos).
    pub fn from_specs(specs: &DesignSpecs, factor: f64) -> Self {
        assert!(factor > 1.0, "bounds must exceed the specs");
        Self {
            latency_cycles: specs.latency_cycles * factor,
            energy_nj: specs.energy_nj * factor,
            area_um2: specs.area_um2 * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::WorkloadId;

    #[test]
    fn from_specs_scales_each_bound() {
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let bounds = PenaltyBounds::from_specs(&specs, 3.0);
        assert_eq!(bounds.latency_cycles, 3.0 * specs.latency_cycles);
        assert_eq!(bounds.energy_nj, 3.0 * specs.energy_nj);
        assert_eq!(bounds.area_um2, 3.0 * specs.area_um2);
    }

    #[test]
    fn estimated_bounds_exceed_specs() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let hardware = HardwareSpace::paper_default(2);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let bounds = PenaltyBounds::estimate(&workload, &hardware, &evaluator, &specs, 8, 42);
        assert!(bounds.latency_cycles >= 2.0 * specs.latency_cycles);
        assert!(bounds.energy_nj >= 2.0 * specs.energy_nj);
        assert!(bounds.area_um2 >= 2.0 * specs.area_um2);
    }

    #[test]
    fn estimation_is_deterministic_for_a_seed() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let hardware = HardwareSpace::paper_default(2);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let a = PenaltyBounds::estimate(&workload, &hardware, &evaluator, &specs, 5, 7);
        let b = PenaltyBounds::estimate(&workload, &hardware, &evaluator, &specs, 5, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn from_specs_rejects_factor_below_one() {
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        PenaltyBounds::from_specs(&specs, 0.5);
    }
}
