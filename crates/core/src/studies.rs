//! Accelerator-configuration studies for Table II: from single and
//! homogeneous to heterogeneous accelerators on the CIFAR-10 workload W3.
//!
//! The paper compares four configurations:
//!
//! * **NAS** — accuracy-only NAS, accelerator gets the maximum hardware
//!   resources (`<dla, 4096, 64>`).  Violates the specs.
//! * **Single Acc.** — one sub-accelerator; the network executes twice
//!   sequentially, so the latency and energy constraints of the search are
//!   halved.
//! * **Homo. Acc.** — two identical sub-accelerators each running the same
//!   network simultaneously, so the per-accelerator energy and area
//!   constraints are halved.
//! * **Hetero. Acc. (NASAIC)** — the full co-exploration with two
//!   heterogeneous sub-accelerators and two independently searched
//!   networks.

use crate::engine::{parallel_map, pool::divided_threads, EngineConfig, EvalEngine};
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::search::{Nasaic, NasaicConfig};
use crate::spec::{DesignSpecs, WorkloadId};
use crate::workload::{Task, Workload};
use nasaic_accel::{Accelerator, Dataflow, HardwareSpace, ResourceBudget, SubAccelerator};
use nasaic_nn::backbone::Backbone;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The accelerator configurations compared in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorStudy {
    /// Accuracy-only NAS with maximum hardware resources.
    NasUnconstrained,
    /// One sub-accelerator, network executed twice sequentially.
    SingleAccelerator,
    /// Two identical sub-accelerators running the same network.
    Homogeneous,
    /// NASAIC's heterogeneous two-sub-accelerator design.
    Heterogeneous,
}

impl fmt::Display for AcceleratorStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorStudy::NasUnconstrained => f.write_str("NAS"),
            AcceleratorStudy::SingleAccelerator => f.write_str("Single Acc."),
            AcceleratorStudy::Homogeneous => f.write_str("Homo. Acc."),
            AcceleratorStudy::Heterogeneous => f.write_str("Hetero. Acc. (NASAIC)"),
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRow {
    /// Which configuration the row describes.
    pub study: AcceleratorStudy,
    /// Hardware description in the paper's notation.
    pub hardware: String,
    /// Architecture hyperparameter vectors (one per network instance).
    pub architectures: Vec<String>,
    /// Accuracy of each network instance.
    pub accuracies: Vec<f64>,
    /// `true` when the W3 design specs are satisfied.
    pub satisfied: bool,
}

impl StudyRow {
    /// Best accuracy across the row's networks.
    pub fn best_accuracy(&self) -> f64 {
        self.accuracies.iter().cloned().fold(0.0, f64::max)
    }
}

impl fmt::Display for StudyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let accs: Vec<String> = self
            .accuracies
            .iter()
            .map(|a| format!("{:.2}%", a * 100.0))
            .collect();
        write!(
            f,
            "{:<22} | {:<40} | {} | {} | {}",
            self.study.to_string(),
            self.hardware,
            self.architectures.join(" / "),
            accs.join(" / "),
            if self.satisfied {
                "meets specs"
            } else {
                "violates specs"
            }
        )
    }
}

/// Scale of a study run (how many search episodes are spent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Episodes of each NASAIC search.
    pub episodes: usize,
    /// Hardware-only steps per episode.
    pub hardware_trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine worker ceiling for the study's search (`0` = all cores; the
    /// parallel [`run_all_studies`] fan-out sets each study's share).
    pub engine_threads: usize,
}

impl StudyConfig {
    /// Quick configuration for tests and examples.
    pub fn fast(seed: u64) -> Self {
        Self {
            episodes: 60,
            hardware_trials: 4,
            seed,
            engine_threads: 0,
        }
    }

    /// Benchmark-scale configuration.
    pub fn benchmark(seed: u64) -> Self {
        Self {
            episodes: 120,
            hardware_trials: 6,
            seed,
            engine_threads: 0,
        }
    }

    fn nasaic_config(&self) -> NasaicConfig {
        NasaicConfig {
            episodes: self.episodes,
            hardware_trials: self.hardware_trials,
            ..NasaicConfig::paper(self.seed)
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.engine_threads,
            ..EngineConfig::default()
        }
    }
}

/// The single-task CIFAR-10 workload used by the single / homogeneous
/// studies (one network searched, deployed once or twice).
fn single_cifar_workload() -> Workload {
    Workload::new(vec![Task::new(
        "classification-cifar10",
        Backbone::ResNet9Cifar10,
        1.0,
    )])
}

/// Run one Table II study and produce its row.
pub fn run_study(study: AcceleratorStudy, config: &StudyConfig) -> StudyRow {
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    // Decorrelate the per-study seeds so one unlucky controller
    // initialisation cannot affect several rows at once.
    let mut config = *config;
    config.seed = config.seed.wrapping_mul(31).wrapping_add(match study {
        AcceleratorStudy::NasUnconstrained => 11,
        AcceleratorStudy::SingleAccelerator => 22,
        AcceleratorStudy::Homogeneous => 33,
        AcceleratorStudy::Heterogeneous => 44,
    });
    let config = &config;
    match study {
        AcceleratorStudy::NasUnconstrained => run_nas_unconstrained(specs, config),
        AcceleratorStudy::SingleAccelerator => run_single(specs, config),
        AcceleratorStudy::Homogeneous => run_homogeneous(specs, config),
        AcceleratorStudy::Heterogeneous => run_heterogeneous(specs, config),
    }
}

/// Run all four studies in Table II order.
///
/// The studies are independent searches (their seeds are decorrelated by
/// [`run_study`]), so they fan out in parallel and assemble in paper
/// order, identical to a serial run.
pub fn run_all_studies(config: &StudyConfig) -> Vec<StudyRow> {
    let studies = [
        AcceleratorStudy::NasUnconstrained,
        AcceleratorStudy::SingleAccelerator,
        AcceleratorStudy::Homogeneous,
        AcceleratorStudy::Heterogeneous,
    ];
    // Split the machine between the four studies' engines unless the
    // caller pinned an explicit ceiling.
    let mut config = *config;
    if config.engine_threads == 0 {
        config.engine_threads = divided_threads(studies.len());
    }
    parallel_map(&studies, studies.len(), |&study| run_study(study, &config))
}

fn run_nas_unconstrained(specs: DesignSpecs, config: &StudyConfig) -> StudyRow {
    // Accuracy-only NAS on CIFAR-10, maximum hardware resources.
    let workload = single_cifar_workload();
    let engine = EvalEngine::with_config(
        Evaluator::new(&workload, specs, AccuracyOracle::default()),
        config.engine_config(),
    );
    let baseline = crate::baselines::NasThenAsic {
        nas_episodes: (config.episodes * 2).max(60),
        hardware_samples: 1,
        seed: config.seed,
    };
    let architectures = baseline.run_nas_with_engine(&workload, &engine);
    let accelerator = Accelerator::single(SubAccelerator::new(Dataflow::Nvdla, 4096, 64));
    // The single network serves both W3 tasks; evaluate it twice (two
    // instances executing concurrently on the one accelerator).
    let w3_workload = Workload::w3();
    let w3_evaluator = Evaluator::new(&w3_workload, specs, AccuracyOracle::default());
    let both = vec![architectures[0].clone(), architectures[0].clone()];
    let metrics = w3_evaluator.hardware_metrics(&both, &accelerator);
    let accuracy = engine.accuracies(&architectures)[0];
    StudyRow {
        study: AcceleratorStudy::NasUnconstrained,
        hardware: accelerator.paper_notation(),
        architectures: vec![architectures[0].hyperparameter_string()],
        accuracies: vec![accuracy],
        satisfied: specs.admits(&metrics),
    }
}

fn run_single(specs: DesignSpecs, config: &StudyConfig) -> StudyRow {
    // One network, one sub-accelerator, latency and energy constraints
    // halved (the network runs twice sequentially).
    let workload = single_cifar_workload();
    let search_specs = specs.scaled(0.5, 0.5, 1.0);
    let nasaic_config = NasaicConfig {
        num_sub_accelerators: 1,
        ..config.nasaic_config()
    };
    let outcome = Nasaic::new(workload, search_specs, nasaic_config)
        .with_engine_config(config.engine_config())
        .run();
    match outcome.best {
        Some(best) => StudyRow {
            study: AcceleratorStudy::SingleAccelerator,
            hardware: best.candidate.accelerator.paper_notation(),
            architectures: vec![best.candidate.architectures[0].hyperparameter_string()],
            accuracies: vec![best.evaluation.accuracies[0]],
            satisfied: true,
        },
        None => StudyRow {
            study: AcceleratorStudy::SingleAccelerator,
            hardware: "none".to_string(),
            architectures: vec![],
            accuracies: vec![],
            satisfied: false,
        },
    }
}

fn run_homogeneous(specs: DesignSpecs, config: &StudyConfig) -> StudyRow {
    // One network searched; two identical sub-accelerators each run one
    // copy, so each copy sees half the energy and area budget.
    let workload = single_cifar_workload();
    let search_specs = specs.scaled(1.0, 0.5, 0.5);
    let half_budget = ResourceBudget::paper().scaled(0.5);
    let hardware = HardwareSpace::new(half_budget, 1, Dataflow::all().to_vec());
    let nasaic_config = NasaicConfig {
        num_sub_accelerators: 1,
        ..config.nasaic_config()
    };
    let outcome = Nasaic::new(workload, search_specs, nasaic_config)
        .with_hardware_space(hardware)
        .with_engine_config(config.engine_config())
        .run();
    match outcome.best {
        Some(best) => {
            let sub = best.candidate.accelerator.sub_accelerators()[0];
            StudyRow {
                study: AcceleratorStudy::Homogeneous,
                hardware: format!("2x {}", sub.paper_notation()),
                architectures: vec![format!(
                    "2x {}",
                    best.candidate.architectures[0].hyperparameter_string()
                )],
                accuracies: vec![best.evaluation.accuracies[0]],
                satisfied: true,
            }
        }
        None => StudyRow {
            study: AcceleratorStudy::Homogeneous,
            hardware: "none".to_string(),
            architectures: vec![],
            accuracies: vec![],
            satisfied: false,
        },
    }
}

fn run_heterogeneous(specs: DesignSpecs, config: &StudyConfig) -> StudyRow {
    let outcome = Nasaic::new(Workload::w3(), specs, config.nasaic_config())
        .with_engine_config(config.engine_config())
        .run();
    match outcome.best {
        Some(best) => StudyRow {
            study: AcceleratorStudy::Heterogeneous,
            hardware: best.candidate.accelerator.paper_notation(),
            architectures: best
                .candidate
                .architectures
                .iter()
                .map(|a| a.hyperparameter_string())
                .collect(),
            accuracies: best.evaluation.accuracies.clone(),
            satisfied: true,
        },
        None => StudyRow {
            study: AcceleratorStudy::Heterogeneous,
            hardware: "none".to_string(),
            architectures: vec![],
            accuracies: vec![],
            satisfied: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nas_unconstrained_violates_specs_with_high_accuracy() {
        let row = run_study(AcceleratorStudy::NasUnconstrained, &StudyConfig::fast(1));
        assert!(
            !row.satisfied,
            "unconstrained NAS should violate the W3 specs"
        );
        assert!(
            row.best_accuracy() > 0.93,
            "accuracy {}",
            row.best_accuracy()
        );
    }

    #[test]
    fn single_accelerator_study_meets_specs() {
        let row = run_study(AcceleratorStudy::SingleAccelerator, &StudyConfig::fast(2));
        assert!(row.satisfied);
        assert!(row.best_accuracy() > 0.80);
        assert!(row.hardware.contains('<'));
    }

    #[test]
    fn heterogeneous_study_produces_two_networks() {
        let row = run_study(AcceleratorStudy::Heterogeneous, &StudyConfig::fast(3));
        assert!(row.satisfied);
        assert_eq!(row.architectures.len(), 2);
        assert_eq!(row.accuracies.len(), 2);
    }

    #[test]
    fn study_row_display_contains_verdict() {
        let row = run_study(AcceleratorStudy::NasUnconstrained, &StudyConfig::fast(4));
        assert!(row.to_string().contains("violates specs"));
        assert_eq!(AcceleratorStudy::Homogeneous.to_string(), "Homo. Acc.");
    }
}
