//! Differential tests of the incremental scheduling engine.
//!
//! The incremental [`Simulator`] (checkpointed delta evaluation) and the
//! delta-evaluated [`solve_heuristic`] must be **bit-identical** to the
//! retained naive forms ([`simulate`] from scratch,
//! [`solve_heuristic_reference`]) on randomized HAP instances — and the
//! heuristic must never beat [`solve_exact`] where the exact solver
//! applies.  A pinned instance regresses the old clamped-ratio scoring
//! bug, whose greedy ordering ends with strictly worse energy.

use nasaic_cost::{CostModel, LayerCost, LayerCostRow, NetworkCosts, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_sched::heuristic::latency_optimal_assignment;
use nasaic_sched::schedule::simulate;
use nasaic_sched::{
    solve_exact, solve_exact_unseeded, solve_heuristic, solve_heuristic_reference, Assignment,
    HapProblem, MappingSolution, Simulator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random HAP instance: 1–3 networks of 2–5 layers on 2–3 sub-accelerators
/// with continuous costs, near-degenerate latency pairs (tiny makespan
/// deltas — the regime that exposed the old ratio clamp), an occasional
/// infeasible entry, and a constraint between tight and loose.
fn random_problem(rng: &mut StdRng) -> HapProblem {
    let nets = rng.gen_range(1..=3usize);
    let subs = rng.gen_range(2..=3usize);
    let networks = (0..nets)
        .map(|n| NetworkCosts {
            name: format!("net{n}"),
            layers: (0..rng.gen_range(2..=5usize))
                .map(|l| LayerCostRow {
                    layer_name: format!("l{l}"),
                    macs: 1,
                    per_sub: (0..subs)
                        .map(|_| {
                            if rng.gen_bool(0.05) {
                                LayerCost::infeasible()
                            } else {
                                LayerCost {
                                    latency_cycles: if rng.gen_bool(0.3) {
                                        10.0 + rng.gen_range(0.0..0.01f64)
                                    } else {
                                        rng.gen_range(1.0..100.0f64)
                                    },
                                    energy_nj: rng.gen_range(0.1..1000.0f64),
                                }
                            }
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    let costs = WorkloadCosts {
        networks,
        num_subs: subs,
    };
    let lb = costs.makespan_lower_bound().max(1.0);
    let lb = if lb.is_finite() { lb } else { 100.0 };
    let constraint = lb * rng.gen_range(0.8..2.5f64);
    let penalty = if rng.gen_bool(0.5) {
        0.0
    } else {
        rng.gen_range(0.0..20.0f64)
    };
    HapProblem::new(costs, constraint).with_switch_penalty(penalty)
}

/// A uniformly random (not necessarily feasible) assignment.
fn random_assignment(problem: &HapProblem, rng: &mut StdRng) -> Assignment {
    Assignment::new(
        problem
            .costs
            .networks
            .iter()
            .map(|n| {
                (0..n.layers.len())
                    .map(|_| rng.gen_range(0..problem.num_subs()))
                    .collect()
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The reusable simulator reproduces `simulate` bit-for-bit — full
    /// schedule, makespan-only path, and the checkpointed trial replay
    /// against every possible single-layer deviation.
    #[test]
    fn simulator_matches_naive_simulation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng);
        let mut sim = Simulator::new(&problem);
        for _ in 0..3 {
            let assignment = random_assignment(&problem, &mut rng);
            let naive = simulate(&problem, &assignment);
            let reused = sim.schedule(&assignment);
            prop_assert_eq!(&naive, &reused);
            let makespan = sim.makespan(&assignment);
            prop_assert!(
                makespan == naive.makespan || (makespan.is_infinite() && naive.makespan.is_infinite())
            );

            // Delta evaluation: checkpointed replay of every single-layer
            // move equals a from-scratch simulation of the moved assignment.
            if sim.prepare(&assignment).is_finite() {
                let mut trial = assignment.clone();
                for (n, layers) in assignment.per_network().iter().enumerate() {
                    for (l, &current) in layers.iter().enumerate() {
                        for sub in 0..problem.num_subs() {
                            if sub == current {
                                continue;
                            }
                            trial.set(n, l, sub);
                            let replayed = sim.trial_makespan(&trial, n, l, f64::INFINITY);
                            let from_scratch = simulate(&problem, &trial).makespan;
                            prop_assert!(
                                replayed == from_scratch
                                    || (replayed.is_infinite() && from_scratch.is_infinite()),
                                "trial ({}, {}) -> {}: replay {} vs scratch {}",
                                n, l, sub, replayed, from_scratch
                            );
                            trial.set(n, l, current);
                        }
                    }
                }

                // Committing a random move re-records exactly the
                // checkpoints the move invalidated: trials after the
                // commit must match a freshly prepared simulator on the
                // committed assignment.
                let move_n = rng.gen_range(0..problem.num_networks());
                if !assignment.per_network()[move_n].is_empty() {
                    let move_l = rng.gen_range(0..assignment.per_network()[move_n].len());
                    let move_sub = rng.gen_range(0..problem.num_subs());
                    let mut committed = assignment.clone();
                    committed.set(move_n, move_l, move_sub);
                    let committed_makespan = sim.commit_trial(&committed, move_n, move_l);
                    let scratch_makespan = simulate(&problem, &committed).makespan;
                    prop_assert!(
                        committed_makespan == scratch_makespan
                            || (committed_makespan.is_infinite()
                                && scratch_makespan.is_infinite())
                    );
                    if committed_makespan.is_finite() {
                        let mut fresh = Simulator::new(&problem);
                        prop_assert!(fresh.prepare(&committed).is_finite());
                        let mut trial = committed.clone();
                        for (n, layers) in committed.per_network().iter().enumerate() {
                            for (l, &current) in layers.iter().enumerate() {
                                for sub in 0..problem.num_subs() {
                                    if sub == current {
                                        continue;
                                    }
                                    trial.set(n, l, sub);
                                    let after_commit =
                                        sim.trial_makespan(&trial, n, l, f64::INFINITY);
                                    let after_prepare =
                                        fresh.trial_makespan(&trial, n, l, f64::INFINITY);
                                    prop_assert!(
                                        after_commit == after_prepare
                                            || (after_commit.is_infinite()
                                                && after_prepare.is_infinite()),
                                        "post-commit trial ({}, {}) -> {}: {} vs {}",
                                        n, l, sub, after_commit, after_prepare
                                    );
                                    trial.set(n, l, current);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The delta-evaluated heuristic is bit-identical to the retained
    /// naive reference solver.
    #[test]
    fn incremental_heuristic_matches_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng);
        let incremental = solve_heuristic(&problem);
        let reference = solve_heuristic_reference(&problem);
        prop_assert_eq!(incremental, reference);
    }

    /// The heuristic never beats the exact solver — checked against the
    /// **unseeded** branch and bound, which never sees the heuristic's
    /// solution, so this is a genuinely independent oracle — and the two
    /// agree on infeasibility (including the shared infeasible-sentinel
    /// contract).  The seeded production solver must agree with the
    /// unseeded one on the optimal energy.
    #[test]
    fn heuristic_never_beats_exact(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng);
        let exact =
            solve_exact_unseeded(&problem).expect("random instances are within the layer limit");
        let heuristic = solve_heuristic(&problem);
        let seeded = solve_exact(&problem).expect("same layer limit");
        if exact.feasible {
            prop_assert!(exact.latency_cycles <= problem.latency_constraint);
            prop_assert!(seeded.feasible);
            prop_assert!(
                (seeded.energy_nj - exact.energy_nj).abs() <= 1e-9 * exact.energy_nj.max(1.0),
                "seeded {} vs unseeded {} optimum",
                seeded.energy_nj,
                exact.energy_nj
            );
            if heuristic.feasible {
                prop_assert!(
                    heuristic.energy_nj + 1e-6 >= exact.energy_nj,
                    "heuristic {} beats exact {}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
            }
        } else {
            // No feasible assignment exists, so the heuristic cannot have
            // found one — and both report the same best-latency sentinel.
            prop_assert!(!heuristic.feasible);
            prop_assert_eq!(&exact, &heuristic);
            prop_assert_eq!(&seeded, &heuristic);
        }
    }
}

/// Re-implementation of the pre-fix move loop: every move is rated
/// `saving / (trial - makespan).max(1e-9)`, so makespan-non-increasing
/// moves collapse to a ~1e9× ratio and the cross-class ordering is
/// meaningless.  Kept here verbatim to pin the bug.
fn old_clamped_ratio_solver(problem: &HapProblem) -> MappingSolution {
    let Some(mut assignment) = latency_optimal_assignment(problem) else {
        return MappingSolution::infeasible(Assignment::uniform(&problem.costs, 0));
    };
    let mut schedule = simulate(problem, &assignment);
    let mut energy = problem.energy_of(&assignment);
    if schedule.makespan > problem.latency_constraint {
        return MappingSolution {
            assignment,
            latency_cycles: schedule.makespan,
            energy_nj: energy,
            feasible: false,
        };
    }
    loop {
        let mut best_move: Option<(usize, usize, usize, f64, f64)> = None;
        for (n, network) in problem.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let current_sub = assignment.sub_for(n, l);
                let current_cost = &row.per_sub[current_sub];
                for (candidate_sub, candidate_cost) in row.per_sub.iter().enumerate() {
                    if candidate_sub == current_sub || !candidate_cost.is_feasible() {
                        continue;
                    }
                    let energy_saving = current_cost.energy_nj - candidate_cost.energy_nj;
                    if energy_saving <= 0.0 {
                        continue;
                    }
                    let mut trial = assignment.clone();
                    trial.set(n, l, candidate_sub);
                    let trial_schedule = simulate(problem, &trial);
                    if trial_schedule.makespan > problem.latency_constraint {
                        continue;
                    }
                    let latency_increase = (trial_schedule.makespan - schedule.makespan).max(1e-9);
                    let ratio = energy_saving / latency_increase;
                    let better = match best_move {
                        None => true,
                        Some((_, _, _, best_ratio, _)) => ratio > best_ratio,
                    };
                    if better {
                        best_move = Some((n, l, candidate_sub, ratio, energy_saving));
                    }
                }
            }
        }
        match best_move {
            Some((n, l, sub, _, saving)) => {
                assignment.set(n, l, sub);
                energy -= saving;
                schedule = simulate(problem, &assignment);
            }
            None => break,
        }
    }
    let feasible = schedule.makespan <= problem.latency_constraint;
    MappingSolution {
        assignment,
        latency_cycles: schedule.makespan,
        energy_nj: energy,
        feasible,
    }
}

/// Instance generator matching the search that found the pinned seeds
/// (continuous costs, no infeasible entries, tight-ish constraints).
fn pinned_problem(seed: u64) -> HapProblem {
    let rng = &mut StdRng::seed_from_u64(seed);
    let nets = rng.gen_range(1..=3usize);
    let subs = rng.gen_range(2..=3usize);
    let networks = (0..nets)
        .map(|n| NetworkCosts {
            name: format!("net{n}"),
            layers: (0..rng.gen_range(2..=5usize))
                .map(|l| LayerCostRow {
                    layer_name: format!("l{l}"),
                    macs: 1,
                    per_sub: (0..subs)
                        .map(|_| LayerCost {
                            latency_cycles: if rng.gen_bool(0.3) {
                                10.0 + rng.gen_range(0.0..0.01f64)
                            } else {
                                rng.gen_range(1.0..100.0f64)
                            },
                            energy_nj: rng.gen_range(0.1..1000.0f64),
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    let costs = WorkloadCosts {
        networks,
        num_subs: subs,
    };
    let constraint = costs.makespan_lower_bound() * rng.gen_range(1.0..1.6f64);
    let penalty = if rng.gen_bool(0.5) { 0.0 } else { 5.0 };
    HapProblem::new(costs, constraint.max(1.0)).with_switch_penalty(penalty)
}

/// Regression pin (headline bugfix): on these instances the old
/// clamped-ratio scoring walks a greedy path that ends with strictly
/// worse energy than the fixed per-class scoring.  Found by randomized
/// search over `pinned_problem` seeds; the seeds are stable because the
/// vendored `rand` is stream-compatible with rand 0.8.
#[test]
fn old_ratio_scoring_ends_with_worse_energy() {
    let mut regressed = 0;
    for seed in [3352u64, 53420, 99441] {
        let problem = pinned_problem(seed);
        let old = old_clamped_ratio_solver(&problem);
        let fixed = solve_heuristic(&problem);
        assert_eq!(fixed, solve_heuristic_reference(&problem));
        assert!(
            old.feasible && fixed.feasible,
            "seed {seed} must be feasible"
        );
        assert!(
            fixed.energy_nj < old.energy_nj - 1e-6,
            "seed {seed}: fixed scoring {} should beat old scoring {}",
            fixed.energy_nj,
            old.energy_nj
        );
        regressed += 1;
    }
    assert_eq!(regressed, 3);
}

/// Paper-workload-sized differential check: W1, W2 and W3 cost tables at
/// several constraints, incremental vs reference solver.
#[test]
fn paper_workloads_bit_identical_between_solvers() {
    let model = CostModel::paper_calibrated();
    let workloads: Vec<(&str, Vec<_>)> = vec![
        (
            "w1",
            vec![
                Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
                Backbone::UNetNuclei.materialize_values(&[4, 16, 32, 64, 128, 256]),
            ],
        ),
        (
            "w2",
            vec![
                Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
                Backbone::ResNet9Stl10.materialize_values(&[16, 64, 1, 128, 1, 256, 2]),
            ],
        ),
        (
            "w3",
            vec![
                Backbone::ResNet9Cifar10.materialize_values(&[8, 64, 1, 128, 1, 128, 1]),
                Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            ],
        ),
    ];
    let acc = nasaic_accel::Accelerator::new(vec![
        nasaic_accel::SubAccelerator::new(nasaic_accel::Dataflow::Nvdla, 2048, 32),
        nasaic_accel::SubAccelerator::new(nasaic_accel::Dataflow::Shidiannao, 2048, 32),
    ]);
    for (name, archs) in &workloads {
        let costs = WorkloadCosts::build(&model, archs, &acc);
        for constraint in [8.0e5, 2.0e6, 1.0e7, 1.0e9] {
            let problem = HapProblem::new(costs.clone(), constraint);
            assert_eq!(
                solve_heuristic(&problem),
                solve_heuristic_reference(&problem),
                "workload {name} constraint {constraint}"
            );
        }
    }
}
