//! Mapping and scheduling of DNN layers onto heterogeneous
//! sub-accelerators.
//!
//! The paper's synthesis layer (Section III ➌, "Mapper and scheduler")
//! assigns every network layer to a sub-accelerator (`map(l_{i,j})`) and
//! orders the layers on each sub-accelerator (`sch(aic_k)`).  Section IV ③
//! reduces the optimisation to the classical **heterogeneous assignment
//! problem** (HAP): given per-layer, per-sub-accelerator latency and energy
//! from the cost model, minimise energy subject to a latency constraint.
//! The paper's theorem then states that the design specs are satisfiable
//! iff `HAP(D, AIC, LS) <= ES`.
//!
//! This crate provides:
//!
//! * [`problem`] — the HAP instance ([`HapProblem`]) and assignment types;
//! * [`schedule`] — an event-driven list scheduler that turns an assignment
//!   into a concrete schedule (makespan + per-sub-accelerator timeline),
//!   modelling both intra-network layer dependencies and contention between
//!   networks sharing a sub-accelerator.  The reusable [`Simulator`] keeps
//!   all dispatch scratch alive and supports checkpointed **delta
//!   evaluation** of single-layer re-assignments;
//! * [`heuristic`] — the ratio heuristic in the spirit of Shao et al.
//!   that the paper uses instead of ILP, delta-evaluated against the
//!   incremental simulator (the naive clone-and-resimulate form is kept as
//!   [`solve_heuristic_reference`] for differential tests and benchmarks);
//! * [`exact`] — a branch-and-bound solver with admissible energy/latency
//!   lower bounds, used to validate the heuristic's optimality gap;
//! * [`beam`] — a width-budgeted beam search sharing the branch and
//!   bound's admissible bounds: the middle tier for instances past
//!   [`exact::EXACT_LAYER_LIMIT`] (unbounded width reproduces the exact
//!   optimum; any width is never worse than the heuristic);
//! * [`tier`] — automatic solver selection by instance size
//!   ([`solve_tiered`] never returns `None`) plus the user-facing
//!   [`SchedulerPolicy`] knob and the reportable [`TierDecision`];
//! * [`verify`] — the feasibility theorem (`HAP <= ES`).
//!
//! # Example
//!
//! ```
//! use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
//! use nasaic_cost::{CostModel, WorkloadCosts};
//! use nasaic_nn::backbone::Backbone;
//! use nasaic_sched::{HapProblem, solve_heuristic};
//!
//! let model = CostModel::paper_calibrated();
//! let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
//! let acc = Accelerator::new(vec![
//!     SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
//!     SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
//! ]);
//! let costs = WorkloadCosts::build(&model, &archs, &acc);
//! let problem = HapProblem::new(costs, 1.0e7);
//! let solution = solve_heuristic(&problem);
//! assert!(solution.feasible);
//! ```

#![deny(missing_docs)]

pub mod beam;
pub mod exact;
pub mod heuristic;
pub mod problem;
pub mod schedule;
pub mod tier;
pub mod verify;

pub use beam::{solve_beam, solve_beam_unbounded, DEFAULT_BEAM_WIDTH};
pub use exact::{solve_exact, solve_exact_unseeded, EXACT_LAYER_LIMIT};
pub use heuristic::{solve_heuristic, solve_heuristic_reference};
pub use problem::{Assignment, HapProblem, MappingSolution};
pub use schedule::{Schedule, ScheduledSlot, Simulator};
pub use tier::{
    select_tier, solve_tiered, solve_with_policy, SchedulerPolicy, SchedulerTier, TierDecision,
    BEAM_LAYER_LIMIT,
};
pub use verify::meets_design_specs;
