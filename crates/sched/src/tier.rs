//! Automatic solver-tier selection by instance size.
//!
//! Historically the scenario runner had a silent edge: anything past
//! [`EXACT_LAYER_LIMIT`] made [`solve_exact`] return `None` with no
//! diagnostic, and callers quietly fell back to the heuristic without ever
//! saying so.  This module makes the choice explicit and reportable:
//! [`select_tier`] maps a total layer count to one of three solver tiers,
//! [`solve_tiered`] runs the selected tier and **never** returns `None`,
//! and every decision carries a human-readable [`TierDecision::reason`]
//! that the `RunReport` surfaces in text/JSON/CSV.
//!
//! The ladder rule (measured on the `scale_baseline` rungs, see
//! `docs/performance.md`):
//!
//! | total layers            | tier        |
//! |-------------------------|-------------|
//! | ≤ [`EXACT_LAYER_LIMIT`] | exact       |
//! | ≤ [`BEAM_LAYER_LIMIT`]  | beam (width [`DEFAULT_BEAM_WIDTH`]) |
//! | larger                  | heuristic   |
//!
//! [`SchedulerPolicy`] is the user-facing knob (the scenario schema's
//! `search.scheduler` key): the default `heuristic` pins the paper's
//! solver bit-identically, `auto` enables the ladder, and `beam`/`exact`
//! pin a tier (with a reported fallback when `exact` is asked for an
//! instance past its limit).

use crate::beam::{solve_beam, DEFAULT_BEAM_WIDTH};
use crate::exact::{solve_exact, EXACT_LAYER_LIMIT};
use crate::heuristic::solve_heuristic;
use crate::problem::{HapProblem, MappingSolution};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Largest instance routed to the beam tier by [`select_tier`]; larger
/// instances fall through to the heuristic.  Set where the width-32 beam's
/// rung wall time leaves the millisecond regime on the scale ladder.
pub const BEAM_LAYER_LIMIT: usize = 300;

/// The three solver tiers, ordered from strongest to cheapest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerTier {
    /// Branch and bound ([`solve_exact`]) — optimal, layer-limited.
    Exact,
    /// Width-budgeted beam search ([`solve_beam`]).
    Beam,
    /// Ratio heuristic ([`solve_heuristic`]) — the paper's solver.
    Heuristic,
}

impl SchedulerTier {
    /// Stable lowercase name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerTier::Exact => "exact",
            SchedulerTier::Beam => "beam",
            SchedulerTier::Heuristic => "heuristic",
        }
    }
}

impl fmt::Display for SchedulerTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which tier ran (or would run) on an instance, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierDecision {
    /// The selected tier.
    pub tier: SchedulerTier,
    /// Beam width when the beam tier was selected.
    pub width: Option<usize>,
    /// Total layer count the decision was made on.
    pub total_layers: usize,
    /// Human-readable rationale (kept comma-free so it embeds in CSV rows
    /// without quoting).
    pub reason: String,
}

impl fmt::Display for TierDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.tier, self.reason)
    }
}

/// Map a total layer count to a solver tier (the ladder rule above).
pub fn select_tier(total_layers: usize) -> TierDecision {
    if total_layers <= EXACT_LAYER_LIMIT {
        TierDecision {
            tier: SchedulerTier::Exact,
            width: None,
            total_layers,
            reason: format!(
                "{total_layers} layers within EXACT_LAYER_LIMIT {EXACT_LAYER_LIMIT}: \
                 branch-and-bound is tractable"
            ),
        }
    } else if total_layers <= BEAM_LAYER_LIMIT {
        TierDecision {
            tier: SchedulerTier::Beam,
            width: Some(DEFAULT_BEAM_WIDTH),
            total_layers,
            reason: format!(
                "{total_layers} layers exceed EXACT_LAYER_LIMIT {EXACT_LAYER_LIMIT}; \
                 within BEAM_LAYER_LIMIT {BEAM_LAYER_LIMIT} so beam width \
                 {DEFAULT_BEAM_WIDTH} runs"
            ),
        }
    } else {
        TierDecision {
            tier: SchedulerTier::Heuristic,
            width: None,
            total_layers,
            reason: format!(
                "{total_layers} layers exceed BEAM_LAYER_LIMIT {BEAM_LAYER_LIMIT}: \
                 ratio heuristic only"
            ),
        }
    }
}

/// Solve with the automatically selected tier.  Unlike [`solve_exact`]
/// this never returns `None`: every instance gets a solution (possibly the
/// infeasible sentinel) plus the decision that produced it.
pub fn solve_tiered(problem: &HapProblem) -> (MappingSolution, TierDecision) {
    let decision = select_tier(problem.costs.total_layers());
    let solution = match decision.tier {
        SchedulerTier::Exact => {
            solve_exact(problem).expect("select_tier guarantees the exact layer limit")
        }
        SchedulerTier::Beam => solve_beam(problem, DEFAULT_BEAM_WIDTH),
        SchedulerTier::Heuristic => solve_heuristic(problem),
    };
    (solution, decision)
}

/// The user-facing scheduler knob carried by a scenario's `search` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Always the ratio heuristic — the paper's solver, bit-identical to
    /// the pre-tier behaviour.  The default.
    #[default]
    Heuristic,
    /// Tier by instance size via [`select_tier`].
    Auto,
    /// Always the beam tier at [`DEFAULT_BEAM_WIDTH`].
    Beam,
    /// The exact solver where its layer limit allows; reported fallback to
    /// the size-selected tier past it.
    Exact,
}

impl SchedulerPolicy {
    /// All policies, in documentation order.
    pub fn all() -> [SchedulerPolicy; 4] {
        [
            SchedulerPolicy::Heuristic,
            SchedulerPolicy::Auto,
            SchedulerPolicy::Beam,
            SchedulerPolicy::Exact,
        ]
    }

    /// Stable lowercase name used in scenario configs and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Heuristic => "heuristic",
            SchedulerPolicy::Auto => "auto",
            SchedulerPolicy::Beam => "beam",
            SchedulerPolicy::Exact => "exact",
        }
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedulerPolicy {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        SchedulerPolicy::all()
            .into_iter()
            .find(|policy| policy.name() == text)
            .ok_or_else(|| {
                format!("unknown scheduler '{text}' (expected heuristic, auto, beam or exact)")
            })
    }
}

/// Solve under a [`SchedulerPolicy`].  Like [`solve_tiered`] this never
/// returns `None`; the returned decision records which tier actually ran
/// (including the fallback when `exact` is requested past its limit).
pub fn solve_with_policy(
    problem: &HapProblem,
    policy: SchedulerPolicy,
) -> (MappingSolution, TierDecision) {
    let (solution, decision) = solve_with_policy_inner(problem, policy);
    if nasaic_telemetry::enabled() {
        // One labelled series per tier that actually ran (not merely was
        // requested), so fallbacks show up in the counts.
        nasaic_telemetry::global()
            .counter(
                "nasaic_sched_tier_selections_total",
                &[("tier", decision.tier.name())],
            )
            .inc();
    }
    (solution, decision)
}

fn solve_with_policy_inner(
    problem: &HapProblem,
    policy: SchedulerPolicy,
) -> (MappingSolution, TierDecision) {
    let total_layers = problem.costs.total_layers();
    match policy {
        SchedulerPolicy::Auto => solve_tiered(problem),
        SchedulerPolicy::Heuristic => (
            solve_heuristic(problem),
            TierDecision {
                tier: SchedulerTier::Heuristic,
                width: None,
                total_layers,
                reason: "policy heuristic pins the paper's ratio heuristic".to_string(),
            },
        ),
        SchedulerPolicy::Beam => (
            solve_beam(problem, DEFAULT_BEAM_WIDTH),
            TierDecision {
                tier: SchedulerTier::Beam,
                width: Some(DEFAULT_BEAM_WIDTH),
                total_layers,
                reason: format!("policy beam pins beam search at width {DEFAULT_BEAM_WIDTH}"),
            },
        ),
        SchedulerPolicy::Exact => match solve_exact(problem) {
            Some(solution) => (
                solution,
                TierDecision {
                    tier: SchedulerTier::Exact,
                    width: None,
                    total_layers,
                    reason: format!(
                        "policy exact: {total_layers} layers within EXACT_LAYER_LIMIT \
                         {EXACT_LAYER_LIMIT}"
                    ),
                },
            ),
            None => {
                let (solution, mut decision) = solve_tiered(problem);
                decision.reason = format!(
                    "policy exact overruled: {total_layers} layers exceed EXACT_LAYER_LIMIT \
                     {EXACT_LAYER_LIMIT}; fell back to {}",
                    decision.tier
                );
                (solution, decision)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn problem_with_layers(copies: usize, latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        // Each copy is the smallest 9-layer ResNet.
        let archs: Vec<_> = (0..copies)
            .map(|_| Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]))
            .collect();
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    #[test]
    fn tier_rule_matches_the_documented_ladder() {
        assert_eq!(select_tier(1).tier, SchedulerTier::Exact);
        assert_eq!(select_tier(EXACT_LAYER_LIMIT).tier, SchedulerTier::Exact);
        assert_eq!(select_tier(EXACT_LAYER_LIMIT + 1).tier, SchedulerTier::Beam);
        assert_eq!(select_tier(BEAM_LAYER_LIMIT).tier, SchedulerTier::Beam);
        assert_eq!(
            select_tier(BEAM_LAYER_LIMIT + 1).tier,
            SchedulerTier::Heuristic
        );
    }

    #[test]
    fn decision_reason_names_the_crossed_limit() {
        let beam = select_tier(100);
        assert!(beam.reason.contains("EXACT_LAYER_LIMIT"));
        assert_eq!(beam.width, Some(DEFAULT_BEAM_WIDTH));
        let heuristic = select_tier(1000);
        assert!(heuristic.reason.contains("BEAM_LAYER_LIMIT"));
        // Reasons must embed into CSV rows without quoting.
        for decision in [&beam, &heuristic, &select_tier(9)] {
            assert!(!decision.reason.contains(','), "{}", decision.reason);
        }
    }

    #[test]
    fn solve_tiered_never_returns_none_past_the_exact_limit() {
        // 45 layers: over EXACT_LAYER_LIMIT, where solve_exact is None.
        let problem = problem_with_layers(5, 1e9);
        assert!(problem.costs.total_layers() > EXACT_LAYER_LIMIT);
        assert!(solve_exact(&problem).is_none());
        let (solution, decision) = solve_tiered(&problem);
        assert!(solution.feasible);
        assert_eq!(decision.tier, SchedulerTier::Beam);
    }

    #[test]
    fn exact_policy_reports_its_fallback() {
        let problem = problem_with_layers(5, 1e9);
        let (solution, decision) = solve_with_policy(&problem, SchedulerPolicy::Exact);
        assert!(solution.feasible);
        assert_eq!(decision.tier, SchedulerTier::Beam);
        assert!(decision.reason.contains("overruled"), "{}", decision.reason);
    }

    #[test]
    fn heuristic_policy_is_bit_identical_to_solve_heuristic() {
        for copies in [1usize, 3] {
            let problem = problem_with_layers(copies, 1e9);
            let (solution, decision) = solve_with_policy(&problem, SchedulerPolicy::Heuristic);
            assert_eq!(solution, solve_heuristic(&problem));
            assert_eq!(decision.tier, SchedulerTier::Heuristic);
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in SchedulerPolicy::all() {
            assert_eq!(policy.name().parse::<SchedulerPolicy>(), Ok(policy));
        }
        assert!("ilp".parse::<SchedulerPolicy>().is_err());
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Heuristic);
    }

    #[test]
    fn tiered_solution_on_small_instances_is_exact() {
        let problem = problem_with_layers(1, 1e9);
        let (solution, decision) = solve_tiered(&problem);
        assert_eq!(decision.tier, SchedulerTier::Exact);
        assert_eq!(
            solution,
            solve_exact(&problem).expect("within the layer limit")
        );
    }
}
