//! The heterogeneous assignment problem (HAP) instance and its solution
//! types.

use nasaic_cost::WorkloadCosts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default latency penalty (cycles) paid when consecutive layers of the same
/// network execute on different sub-accelerators (intermediate activations
/// cross the NoC through the global buffer).
pub const DEFAULT_SWITCH_PENALTY_CYCLES: f64 = 256.0;

/// A layer-to-sub-accelerator assignment: `assignment[n][l]` is the index of
/// the sub-accelerator that executes layer `l` of network `n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    per_network: Vec<Vec<usize>>,
}

impl Assignment {
    /// Create an assignment from per-network layer assignments.
    pub fn new(per_network: Vec<Vec<usize>>) -> Self {
        Self { per_network }
    }

    /// Assignment of every layer of every network to a single
    /// sub-accelerator.
    pub fn uniform(costs: &WorkloadCosts, sub: usize) -> Self {
        Self::new(
            costs
                .networks
                .iter()
                .map(|n| vec![sub; n.layers.len()])
                .collect(),
        )
    }

    /// The sub-accelerator assigned to layer `layer` of network `network`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn sub_for(&self, network: usize, layer: usize) -> usize {
        self.per_network[network][layer]
    }

    /// Mutable access used by solvers.
    pub fn set(&mut self, network: usize, layer: usize, sub: usize) {
        self.per_network[network][layer] = sub;
    }

    /// Per-network assignment slices.
    pub fn per_network(&self) -> &[Vec<usize>] {
        &self.per_network
    }

    /// Total number of assigned layers.
    pub fn total_layers(&self) -> usize {
        self.per_network.iter().map(Vec::len).sum()
    }

    /// Number of sub-accelerator switches along all network chains (used to
    /// account for NoC transfer overhead).
    pub fn num_switches(&self) -> usize {
        self.per_network
            .iter()
            .map(|layers| layers.windows(2).filter(|w| w[0] != w[1]).count())
            .sum()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, layers) in self.per_network.iter().enumerate() {
            write!(f, "net{n}: {layers:?} ")?;
        }
        Ok(())
    }
}

/// A HAP instance: a cost table plus the latency (timing) constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HapProblem {
    /// Per-layer, per-sub-accelerator costs of the workload.
    pub costs: WorkloadCosts,
    /// Latency constraint `LS` (cycles).
    pub latency_constraint: f64,
    /// Latency penalty per sub-accelerator switch along a network chain.
    pub switch_penalty_cycles: f64,
}

impl HapProblem {
    /// Create a HAP instance with the default switch penalty.
    ///
    /// # Panics
    ///
    /// Panics if `latency_constraint` is not strictly positive.
    pub fn new(costs: WorkloadCosts, latency_constraint: f64) -> Self {
        assert!(
            latency_constraint > 0.0,
            "latency constraint must be positive"
        );
        Self {
            costs,
            latency_constraint,
            switch_penalty_cycles: DEFAULT_SWITCH_PENALTY_CYCLES,
        }
    }

    /// Override the switch penalty.
    pub fn with_switch_penalty(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0, "switch penalty must be non-negative");
        self.switch_penalty_cycles = cycles;
        self
    }

    /// Number of sub-accelerators (columns) in the instance.
    pub fn num_subs(&self) -> usize {
        self.costs.num_subs
    }

    /// Number of networks in the instance.
    pub fn num_networks(&self) -> usize {
        self.costs.networks.len()
    }

    /// Energy of an assignment (sum of the selected per-layer energies).
    /// Returns infinity if any selected mapping is infeasible.
    pub fn energy_of(&self, assignment: &Assignment) -> f64 {
        let mut total = 0.0;
        for (n, network) in self.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let cost = &row.per_sub[assignment.sub_for(n, l)];
                if !cost.is_feasible() {
                    return f64::INFINITY;
                }
                total += cost.energy_nj;
            }
        }
        total
    }
}

/// A solved mapping: the assignment plus its evaluated latency and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingSolution {
    /// The layer-to-sub-accelerator assignment.
    pub assignment: Assignment,
    /// Makespan of the workload under this assignment (cycles).
    pub latency_cycles: f64,
    /// Total energy of the workload under this assignment (nJ).
    pub energy_nj: f64,
    /// `true` when the latency constraint of the problem is satisfied.
    pub feasible: bool,
}

impl MappingSolution {
    /// An infeasible sentinel solution.
    pub fn infeasible(assignment: Assignment) -> Self {
        Self {
            assignment,
            latency_cycles: f64::INFINITY,
            energy_nj: f64::INFINITY,
            feasible: false,
        }
    }
}

impl fmt::Display for MappingSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mapping: L={:.3e} cycles, E={:.3e} nJ, {}",
            self.latency_cycles,
            self.energy_nj,
            if self.feasible {
                "feasible"
            } else {
                "infeasible"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::CostModel;
    use nasaic_nn::backbone::Backbone;

    fn small_costs() -> WorkloadCosts {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        WorkloadCosts::build(&model, &archs, &acc)
    }

    #[test]
    fn uniform_assignment_covers_every_layer() {
        let costs = small_costs();
        let a = Assignment::uniform(&costs, 0);
        assert_eq!(a.total_layers(), costs.total_layers());
        assert_eq!(a.num_switches(), 0);
        assert_eq!(a.sub_for(0, 3), 0);
    }

    #[test]
    fn switch_counting() {
        let a = Assignment::new(vec![vec![0, 1, 1, 0], vec![1, 1]]);
        assert_eq!(a.num_switches(), 2);
        assert!(a.to_string().contains("net0"));
    }

    #[test]
    fn energy_of_sums_selected_costs() {
        let costs = small_costs();
        let problem = HapProblem::new(costs.clone(), 1e9);
        let on_zero = problem.energy_of(&Assignment::uniform(&costs, 0));
        let on_one = problem.energy_of(&Assignment::uniform(&costs, 1));
        assert!(on_zero.is_finite() && on_one.is_finite());
        assert!(on_zero > 0.0);
        // Mapping everything to a different sub-accelerator changes energy.
        assert_ne!(on_zero, on_one);
    }

    #[test]
    fn energy_of_infeasible_mapping_is_infinite() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs.clone(), 1e9);
        assert!(problem
            .energy_of(&Assignment::uniform(&costs, 1))
            .is_infinite());
    }

    #[test]
    #[should_panic]
    fn non_positive_latency_constraint_rejected() {
        HapProblem::new(small_costs(), 0.0);
    }

    #[test]
    fn solution_display_mentions_feasibility() {
        let costs = small_costs();
        let s = MappingSolution::infeasible(Assignment::uniform(&costs, 0));
        assert!(s.to_string().contains("infeasible"));
    }
}
