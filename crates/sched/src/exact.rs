//! Exact branch-and-bound solver for small HAP instances.
//!
//! The paper mentions that the optimal mapping could be obtained with an
//! ILP formulation; this module plays that role for the reproduction.  It
//! enumerates layer-to-sub-accelerator assignments depth-first and
//! evaluates complete assignments with the same list scheduler used by the
//! heuristic.  Three admissible bounds keep the search tractable well past
//! the naive `O(num_subs^total_layers)` enumeration:
//!
//! * **incumbent seeding** — the search starts from the ratio heuristic's
//!   solution (when feasible), so energy pruning bites from the first
//!   branch;
//! * **remaining-energy lower bound** — a branch is cut when the partial
//!   energy plus the sum of every remaining layer's minimum feasible
//!   energy already matches the incumbent;
//! * **chain-latency lower bound** — a branch is cut when some network's
//!   assigned-layer latencies plus the minimum feasible latencies of its
//!   remaining layers exceed the latency constraint (the real makespan can
//!   only be larger: contention and switch penalties add, never subtract).
//!
//! Sub-accelerators are tried in increasing-energy order so the cheapest
//! completion is reached first.  With these bounds the solver covers
//! realistic single-network instances (see [`EXACT_LAYER_LIMIT`]), which
//! is what the optimality-gap tests compare the heuristic against.

use crate::heuristic::{latency_optimal_assignment, solve_heuristic};
use crate::problem::{Assignment, HapProblem, MappingSolution};
use crate::schedule::{simulate, Simulator};

/// Maximum number of layers accepted by [`solve_exact`]; larger instances
/// return `None` immediately instead of running for an unreasonable time.
/// Raised from 9-layer toy instances to paper-sized single networks by the
/// bound-tightened branch and bound.
pub const EXACT_LAYER_LIMIT: usize = 28;

/// Solve a HAP instance exactly.
///
/// Returns `None` when the instance exceeds [`EXACT_LAYER_LIMIT`] layers.
/// Otherwise returns the energy-optimal feasible solution, or — matching
/// [`solve_heuristic`]'s infeasible contract — the latency-optimal
/// assignment with its real makespan and energy when no assignment meets
/// the latency constraint (an [`MappingSolution::infeasible`] sentinel
/// when some layer has no feasible mapping at all).
pub fn solve_exact(problem: &HapProblem) -> Option<MappingSolution> {
    let total_layers = problem.costs.total_layers();
    if total_layers > EXACT_LAYER_LIMIT {
        return None;
    }
    Some(BranchAndBound::new(problem).solve(true))
}

/// [`solve_exact`] without the heuristic incumbent seed.
///
/// Slower (pruning only bites once the DFS reaches its first leaf), but
/// fully independent of [`solve_heuristic`] — this is the oracle the
/// heuristic-vs-exact consistency suites compare against, so a heuristic
/// regression cannot hide inside its own seed.  Returns the same solution
/// (same optimal energy) as [`solve_exact`] up to floating-point dust in
/// the pruning bound.
pub fn solve_exact_unseeded(problem: &HapProblem) -> Option<MappingSolution> {
    let total_layers = problem.costs.total_layers();
    if total_layers > EXACT_LAYER_LIMIT {
        return None;
    }
    Some(BranchAndBound::new(problem).solve(false))
}

/// The infeasible result shared with the heuristic: report the
/// latency-optimal assignment (the best-latency schedule the solvers
/// know), not a meaningless uniform mapping.  Shared with the beam tier
/// (`crate::beam`) so every solver reports infeasibility identically.
pub(crate) fn infeasible_solution(problem: &HapProblem) -> MappingSolution {
    match latency_optimal_assignment(problem) {
        Some(assignment) => {
            let schedule = simulate(problem, &assignment);
            let energy = problem.energy_of(&assignment);
            MappingSolution {
                assignment,
                latency_cycles: schedule.makespan,
                energy_nj: energy,
                feasible: false,
            }
        }
        None => MappingSolution::infeasible(Assignment::uniform(&problem.costs, 0)),
    }
}

/// Admissible-bound tables shared by the branch and bound and the beam
/// tier (`crate::beam`): both enumerate the same flattened network-major
/// position order with the same pruning arithmetic, so the two solvers
/// cannot drift on what "provably infeasible" or "remaining cost" means.
pub(crate) struct SearchBounds {
    /// Flattened (network, layer) pairs in depth order.
    pub positions: Vec<(usize, usize)>,
    /// Feasible sub-accelerators of each position, cheapest energy first.
    pub sub_order: Vec<Vec<usize>>,
    /// `energy_suffix_lb[d]`: sum of minimum feasible energies of
    /// `positions[d..]` (admissible remaining-energy bound).
    pub energy_suffix_lb: Vec<f64>,
    /// `chain_suffix_lb[n][l]`: sum of minimum feasible latencies of
    /// layers `l..` of network `n` (admissible chain-latency bound).
    pub chain_suffix_lb: Vec<Vec<f64>>,
}

impl SearchBounds {
    pub(crate) fn new(problem: &HapProblem) -> Self {
        let mut positions = Vec::with_capacity(problem.costs.total_layers());
        let mut sub_order = Vec::with_capacity(problem.costs.total_layers());
        let mut chain_suffix_lb = Vec::with_capacity(problem.num_networks());
        for (n, network) in problem.costs.networks.iter().enumerate() {
            let mut suffix = vec![0.0; network.layers.len() + 1];
            for (l, row) in network.layers.iter().enumerate().rev() {
                suffix[l] = suffix[l + 1] + row.min_feasible_latency().unwrap_or(f64::INFINITY);
            }
            chain_suffix_lb.push(suffix);
            for (l, row) in network.layers.iter().enumerate() {
                positions.push((n, l));
                let mut subs: Vec<usize> = (0..problem.num_subs())
                    .filter(|&s| row.per_sub[s].is_feasible())
                    .collect();
                subs.sort_by(|&a, &b| {
                    row.per_sub[a]
                        .energy_nj
                        .total_cmp(&row.per_sub[b].energy_nj)
                });
                sub_order.push(subs);
            }
        }
        let mut energy_suffix_lb = vec![0.0; positions.len() + 1];
        for (d, &(n, l)) in positions.iter().enumerate().rev() {
            let row = &problem.costs.networks[n].layers[l];
            energy_suffix_lb[d] =
                energy_suffix_lb[d + 1] + row.min_feasible_energy().unwrap_or(f64::INFINITY);
        }
        Self {
            positions,
            sub_order,
            energy_suffix_lb,
            chain_suffix_lb,
        }
    }

    /// Unschedulable instance (some layer feasible nowhere) or a chain
    /// that cannot meet the constraint even alone: no enumeration can
    /// succeed.
    pub(crate) fn provably_infeasible(&self, problem: &HapProblem) -> bool {
        self.energy_suffix_lb
            .first()
            .is_some_and(|lb| !lb.is_finite())
            || self
                .chain_suffix_lb
                .iter()
                .any(|suffix| suffix[0] > problem.latency_constraint)
    }
}

struct BranchAndBound<'a> {
    problem: &'a HapProblem,
    bounds: SearchBounds,
    /// Latency of the layers of each network assigned so far.
    chain_acc: Vec<f64>,
    assignment: Assignment,
    sim: Simulator,
    best: Option<MappingSolution>,
    /// Search-tree nodes expanded (recursion entries); a plain field so
    /// counting costs nothing, flushed to telemetry once per solve.
    nodes: u64,
}

impl<'a> BranchAndBound<'a> {
    fn new(problem: &'a HapProblem) -> Self {
        Self {
            problem,
            bounds: SearchBounds::new(problem),
            chain_acc: vec![0.0; problem.num_networks()],
            assignment: Assignment::new(
                problem
                    .costs
                    .networks
                    .iter()
                    .map(|n| vec![0usize; n.layers.len()])
                    .collect(),
            ),
            sim: Simulator::new(problem),
            best: None,
            nodes: 0,
        }
    }

    fn solve(mut self, seed_incumbent: bool) -> MappingSolution {
        let solution = self.solve_inner(seed_incumbent);
        if nasaic_telemetry::enabled() {
            use std::sync::{Arc, OnceLock};
            static TOTAL: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
            static PER_SOLVE: OnceLock<Arc<nasaic_telemetry::Histogram>> = OnceLock::new();
            TOTAL
                .get_or_init(|| {
                    nasaic_telemetry::global().counter("nasaic_sched_bb_nodes_expanded_total", &[])
                })
                .add(self.nodes);
            PER_SOLVE
                .get_or_init(|| {
                    nasaic_telemetry::global().histogram("nasaic_sched_bb_nodes_per_solve", &[])
                })
                .record(self.nodes);
        }
        solution
    }

    fn solve_inner(&mut self, seed_incumbent: bool) -> MappingSolution {
        if self.bounds.provably_infeasible(self.problem) {
            return infeasible_solution(self.problem);
        }

        // Seed the incumbent with the heuristic solution so energy pruning
        // starts tight.  The seed is trusted only after independent
        // re-verification against its own assignment — a re-simulated
        // makespan within the constraint and a recomputed energy that
        // matches the incrementally-tracked one to within float dust —
        // because a wrong pruning bound would silently cut genuinely
        // better assignments.  A verified seed is kept verbatim, so
        // `solve_exact == solve_heuristic` holds exactly whenever the
        // heuristic is already optimal.
        if seed_incumbent {
            let seed = solve_heuristic(self.problem);
            if seed.feasible && self.verify_seed(&seed) {
                self.best = Some(seed);
                self.recurse(0, 0.0);
                return self.best.take().expect("incumbent was seeded");
            }
        }
        self.recurse(0, 0.0);
        match self.best.take() {
            Some(best) => best,
            // Nothing fits; report the same best-latency sentinel as the
            // heuristic.
            None => infeasible_solution(self.problem),
        }
    }

    /// Independent check of a heuristic seed before it becomes the pruning
    /// bound: its makespan must re-simulate within the constraint and its
    /// energy must match a recomputation from the assignment.
    fn verify_seed(&mut self, seed: &MappingSolution) -> bool {
        let makespan = self.sim.makespan(&seed.assignment);
        let energy = self.problem.energy_of(&seed.assignment);
        makespan <= self.problem.latency_constraint
            && (energy - seed.energy_nj).abs() <= 1e-9 * energy.max(1.0)
    }

    fn recurse(&mut self, depth: usize, partial_energy: f64) {
        self.nodes += 1;
        if let Some(incumbent) = &self.best {
            // Only feasible solutions are stored, so the incumbent's energy
            // is always the bound to beat.
            if partial_energy + self.bounds.energy_suffix_lb[depth] >= incumbent.energy_nj {
                return;
            }
        }
        if depth == self.bounds.positions.len() {
            let makespan = self.sim.makespan(&self.assignment);
            if makespan <= self.problem.latency_constraint {
                // `partial_energy` accumulated in the same network-major
                // layer order as `HapProblem::energy_of`, so the sums are
                // bit-identical; the bound check above already established
                // it beats any incumbent.
                self.best = Some(MappingSolution {
                    assignment: self.assignment.clone(),
                    latency_cycles: makespan,
                    energy_nj: partial_energy,
                    feasible: true,
                });
            }
            return;
        }
        let (n, l) = self.bounds.positions[depth];
        for i in 0..self.bounds.sub_order[depth].len() {
            let sub = self.bounds.sub_order[depth][i];
            let cost = &self.problem.costs.networks[n].layers[l].per_sub[sub];
            let saved_chain = self.chain_acc[n];
            let new_chain = saved_chain + cost.latency_cycles;
            if new_chain + self.bounds.chain_suffix_lb[n][l + 1] > self.problem.latency_constraint {
                continue;
            }
            self.assignment.set(n, l, sub);
            self.chain_acc[n] = new_chain;
            self.recurse(depth + 1, partial_energy + cost.energy_nj);
            self.chain_acc[n] = saved_chain;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::solve_heuristic;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn tiny_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        // The smallest ResNet-9 (no residual convolutions): 9 layers.
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1024, 16),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    /// A paper-sized single network (18 layers) — representative of the
    /// per-task instances the optimality-gap studies care about, and far
    /// beyond the pre-bound 9-layer ceiling.
    fn realistic_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs =
            vec![Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    #[test]
    fn exact_solver_rejects_large_instances() {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            Backbone::UNetNuclei.materialize_values(&[5, 16, 32, 64, 128, 256]),
        ];
        let acc = Accelerator::new(vec![SubAccelerator::new(Dataflow::Nvdla, 1024, 16)]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        assert!(costs.total_layers() > EXACT_LAYER_LIMIT);
        assert!(solve_exact(&HapProblem::new(costs, 1e9)).is_none());
    }

    #[test]
    fn exact_finds_feasible_solution_under_relaxed_constraint() {
        let solution = solve_exact(&tiny_problem(1e9)).unwrap();
        assert!(solution.feasible);
        assert!(solution.energy_nj.is_finite());
    }

    #[test]
    fn exact_reports_infeasible_under_impossible_constraint() {
        let solution = solve_exact(&tiny_problem(1.0)).unwrap();
        assert!(!solution.feasible);
    }

    #[test]
    fn infeasible_sentinel_carries_the_best_latency_assignment() {
        let problem = tiny_problem(1.0);
        let exact = solve_exact(&problem).unwrap();
        let heuristic = solve_heuristic(&problem);
        // Same contract: the latency-optimal assignment with its real
        // (finite) makespan and energy, marked infeasible.
        assert_eq!(exact, heuristic);
        assert!(exact.latency_cycles.is_finite());
        assert!(exact.energy_nj.is_finite());
        assert!(exact.latency_cycles > problem.latency_constraint);
    }

    #[test]
    fn unschedulable_instance_keeps_the_uniform_sentinel() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::inactive(Dataflow::Nvdla),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let solution = solve_exact(&HapProblem::new(costs, 1e9)).unwrap();
        assert!(!solution.feasible);
        assert!(solution.latency_cycles.is_infinite());
    }

    #[test]
    fn heuristic_is_never_better_than_exact() {
        // The unseeded solver never sees the heuristic's solution, so this
        // comparison is a genuinely independent optimality check.
        for constraint in [2.0e6_f64, 5.0e6, 1.0e9] {
            let problem = tiny_problem(constraint);
            let exact = solve_exact_unseeded(&problem).unwrap();
            let heuristic = solve_heuristic(&problem);
            if exact.feasible {
                assert!(
                    heuristic.feasible,
                    "heuristic must find a solution when one exists (constraint {constraint})"
                );
                assert!(
                    heuristic.energy_nj + 1e-6 >= exact.energy_nj,
                    "heuristic energy {} beats exact {} at constraint {constraint}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
                // The heuristic should also stay within a reasonable factor
                // of the optimum on these small instances.
                assert!(
                    heuristic.energy_nj <= exact.energy_nj * 1.5,
                    "heuristic too far from optimal: {} vs {}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
            } else {
                assert!(!heuristic.feasible);
            }
        }
    }

    #[test]
    fn exact_covers_paper_sized_single_networks() {
        for constraint in [8.0e5_f64, 2.0e6, 1.0e9] {
            let problem = realistic_problem(constraint);
            assert!(problem.costs.total_layers() <= EXACT_LAYER_LIMIT);
            let exact = solve_exact_unseeded(&problem).expect("within the raised layer limit");
            let heuristic = solve_heuristic(&problem);
            let seeded = solve_exact(&problem).expect("within the raised layer limit");
            assert!(
                (seeded.energy_nj - exact.energy_nj).abs() <= 1e-9 * exact.energy_nj.max(1.0)
                    || (!seeded.feasible && !exact.feasible),
                "seeded {} vs unseeded {} at constraint {constraint}",
                seeded.energy_nj,
                exact.energy_nj
            );
            if exact.feasible {
                assert!(exact.latency_cycles <= problem.latency_constraint);
                assert!(
                    heuristic.energy_nj + 1e-6 >= exact.energy_nj,
                    "heuristic {} beats exact {} at constraint {constraint}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
            }
        }
    }

    #[test]
    fn exact_solution_respects_latency_constraint() {
        let problem = tiny_problem(5.0e6);
        if let Some(solution) = solve_exact(&problem) {
            if solution.feasible {
                assert!(solution.latency_cycles <= problem.latency_constraint);
            }
        }
    }
}
