//! Exact branch-and-bound solver for small HAP instances.
//!
//! The paper mentions that the optimal mapping could be obtained with an
//! ILP formulation; this module plays that role for the reproduction.  It
//! enumerates layer-to-sub-accelerator assignments depth-first, pruning
//! branches whose energy already exceeds the incumbent, and evaluates the
//! latency of complete assignments with the same list scheduler used by the
//! heuristic.  Complexity is `O(num_subs^total_layers)`, so it is only
//! intended for validating the heuristic on small instances (tests cap the
//! instance size).

use crate::problem::{Assignment, HapProblem, MappingSolution};
use crate::schedule::simulate;

/// Maximum number of layers accepted by [`solve_exact`]; larger instances
/// return `None` immediately instead of running for an unreasonable time.
pub const EXACT_LAYER_LIMIT: usize = 24;

/// Solve a HAP instance exactly.
///
/// Returns `None` when the instance exceeds [`EXACT_LAYER_LIMIT`] layers.
/// Otherwise returns the energy-optimal feasible solution, or an infeasible
/// sentinel when no assignment meets the latency constraint.
pub fn solve_exact(problem: &HapProblem) -> Option<MappingSolution> {
    let total_layers = problem.costs.total_layers();
    if total_layers > EXACT_LAYER_LIMIT {
        return None;
    }
    // Flatten (network, layer) pairs for depth-first enumeration.
    let mut positions = Vec::with_capacity(total_layers);
    for (n, network) in problem.costs.networks.iter().enumerate() {
        for l in 0..network.layers.len() {
            positions.push((n, l));
        }
    }

    let mut assignment = Assignment::new(
        problem
            .costs
            .networks
            .iter()
            .map(|n| vec![0usize; n.layers.len()])
            .collect(),
    );
    let mut best: Option<MappingSolution> = None;

    fn recurse(
        problem: &HapProblem,
        positions: &[(usize, usize)],
        depth: usize,
        partial_energy: f64,
        assignment: &mut Assignment,
        best: &mut Option<MappingSolution>,
    ) {
        // Bound: partial energy already worse than the incumbent.
        if let Some(incumbent) = best {
            if incumbent.feasible && partial_energy >= incumbent.energy_nj {
                return;
            }
        }
        if depth == positions.len() {
            let schedule = simulate(problem, assignment);
            if schedule.makespan <= problem.latency_constraint {
                let energy = problem.energy_of(assignment);
                let better = match best {
                    None => true,
                    Some(b) => !b.feasible || energy < b.energy_nj,
                };
                if better {
                    *best = Some(MappingSolution {
                        assignment: assignment.clone(),
                        latency_cycles: schedule.makespan,
                        energy_nj: energy,
                        feasible: true,
                    });
                }
            }
            return;
        }
        let (n, l) = positions[depth];
        for sub in 0..problem.num_subs() {
            let cost = &problem.costs.networks[n].layers[l].per_sub[sub];
            if !cost.is_feasible() {
                continue;
            }
            assignment.set(n, l, sub);
            recurse(
                problem,
                positions,
                depth + 1,
                partial_energy + cost.energy_nj,
                assignment,
                best,
            );
        }
    }

    recurse(problem, &positions, 0, 0.0, &mut assignment, &mut best);

    Some(
        best.unwrap_or_else(|| MappingSolution::infeasible(Assignment::uniform(&problem.costs, 0))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::solve_heuristic;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn tiny_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        // The smallest ResNet-9 (no residual convolutions): 9 layers.
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1024, 16),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    #[test]
    fn exact_solver_rejects_large_instances() {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            Backbone::UNetNuclei.materialize_values(&[5, 16, 32, 64, 128, 256]),
        ];
        let acc = Accelerator::new(vec![SubAccelerator::new(Dataflow::Nvdla, 1024, 16)]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        assert!(solve_exact(&HapProblem::new(costs, 1e9)).is_none());
    }

    #[test]
    fn exact_finds_feasible_solution_under_relaxed_constraint() {
        let solution = solve_exact(&tiny_problem(1e9)).unwrap();
        assert!(solution.feasible);
        assert!(solution.energy_nj.is_finite());
    }

    #[test]
    fn exact_reports_infeasible_under_impossible_constraint() {
        let solution = solve_exact(&tiny_problem(1.0)).unwrap();
        assert!(!solution.feasible);
    }

    #[test]
    fn heuristic_is_never_better_than_exact() {
        for constraint in [2.0e6_f64, 5.0e6, 1.0e9] {
            let problem = tiny_problem(constraint);
            let exact = solve_exact(&problem).unwrap();
            let heuristic = solve_heuristic(&problem);
            if exact.feasible {
                assert!(
                    heuristic.feasible,
                    "heuristic must find a solution when one exists (constraint {constraint})"
                );
                assert!(
                    heuristic.energy_nj + 1e-6 >= exact.energy_nj,
                    "heuristic energy {} beats exact {} at constraint {constraint}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
                // The heuristic should also stay within a reasonable factor
                // of the optimum on these small instances.
                assert!(
                    heuristic.energy_nj <= exact.energy_nj * 1.5,
                    "heuristic too far from optimal: {} vs {}",
                    heuristic.energy_nj,
                    exact.energy_nj
                );
            } else {
                assert!(!heuristic.feasible);
            }
        }
    }

    #[test]
    fn exact_solution_respects_latency_constraint() {
        let problem = tiny_problem(5.0e6);
        if let Some(solution) = solve_exact(&problem) {
            if solution.feasible {
                assert!(solution.latency_cycles <= problem.latency_constraint);
            }
        }
    }
}
