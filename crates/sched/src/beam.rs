//! Width-budgeted beam search over layer assignments — the middle solver
//! tier between the ratio heuristic and the exact branch and bound.
//!
//! The scale ladder (see `docs/performance.md`) produces instances well
//! past [`crate::exact::EXACT_LAYER_LIMIT`] where the heuristic's local
//! moves are the only answer and nothing certifies their quality.  This
//! module fills the gap: a breadth-first enumeration over the same
//! flattened network-major position order as the branch and bound, sharing
//! its admissible bound tables (`crate::exact::SearchBounds`) and its
//! verified-incumbent discipline, but keeping at most `width` partial
//! assignments per depth.
//!
//! Properties the differential tests pin:
//!
//! * **unbounded width ⇒ exact** — with no truncation the frontier is the
//!   branch and bound's non-pruned node set, so the returned energy matches
//!   [`crate::solve_exact_unseeded`] on every instance within the exact
//!   layer limit (up to the same float dust as the seeded/unseeded
//!   comparison);
//! * **never worse than the heuristic** — the incumbent is seeded with the
//!   re-verified [`solve_heuristic`] solution (the same discipline as
//!   [`crate::solve_exact`]), so the beam result is feasible whenever the
//!   heuristic's is and its energy never exceeds it;
//! * **deterministic** — ranking sorts stably by accumulated energy with
//!   parent-order/cheapest-sub-first insertion as the tie-break, so a given
//!   instance and width always return bit-identical solutions.
//!
//! Complete assignments are evaluated with the reusable PR 3
//! [`Simulator`] (zero-alloc dispatch), and the surviving best leaf is
//! polished by the simulator's checkpointed delta evaluation
//! (`prepare`/`trial_makespan`/`commit_trial`): single-layer moves with a
//! strict energy saving are applied greedily while the replayed makespan
//! stays within the constraint.  Polish cannot push the energy below the
//! optimum (any strictly-saving feasible move would contradict optimality),
//! so the unbounded-width identity above survives it.

use crate::exact::{infeasible_solution, SearchBounds};
use crate::heuristic::solve_heuristic;
use crate::problem::{Assignment, HapProblem, MappingSolution};
use crate::schedule::Simulator;

/// Beam width used by the automatic tier selection
/// ([`crate::tier::solve_tiered`]).  Chosen on the scale ladder: width 32
/// closes most of the width-1 energy gap on 39–300-layer rungs while
/// keeping the rung wall time within the search loop's budget.
pub const DEFAULT_BEAM_WIDTH: usize = 32;

/// One partial assignment on the beam frontier: the sub-accelerator chosen
/// for each position expanded so far, the accumulated per-network chain
/// latency, and the accumulated energy (network-major position order — the
/// same order as [`HapProblem::energy_of`], so leaf sums are
/// bit-identical).
struct BeamState {
    subs: Vec<usize>,
    chain_acc: Vec<f64>,
    energy_nj: f64,
}

/// Solve a HAP instance with a width-`width` beam search.
///
/// Always returns a solution, matching [`solve_heuristic`]'s contract:
/// `solution.feasible` is `false` when no enumerated assignment (and not
/// the heuristic seed either) meets the latency constraint, in which case
/// the latency-optimal sentinel shared with the other solvers is returned.
///
/// # Panics
///
/// Panics when `width` is zero.  Pass [`usize::MAX`] (or call
/// [`solve_beam_unbounded`]) for an untruncated beam.
pub fn solve_beam(problem: &HapProblem, width: usize) -> MappingSolution {
    assert!(width >= 1, "beam width must be at least 1");
    if nasaic_telemetry::enabled() {
        use std::sync::{Arc, OnceLock};
        static WIDTH: OnceLock<Arc<nasaic_telemetry::Histogram>> = OnceLock::new();
        WIDTH
            .get_or_init(|| nasaic_telemetry::global().histogram("nasaic_sched_beam_width", &[]))
            .record(width as u64);
    }
    let bounds = SearchBounds::new(problem);
    if bounds.provably_infeasible(problem) {
        return infeasible_solution(problem);
    }
    let mut sim = Simulator::new(problem);

    // Incumbent seeding with the same independent re-verification as the
    // exact solver: a wrong bound would silently truncate genuinely better
    // prefixes, so the heuristic solution is trusted only after its
    // makespan re-simulates within the constraint and its energy matches a
    // recomputation from the assignment.
    let mut best: Option<MappingSolution> = None;
    let seed = solve_heuristic(problem);
    if seed.feasible {
        let makespan = sim.makespan(&seed.assignment);
        let energy = problem.energy_of(&seed.assignment);
        if makespan <= problem.latency_constraint
            && (energy - seed.energy_nj).abs() <= 1e-9 * energy.max(1.0)
        {
            best = Some(seed);
        }
    }

    let mut frontier = vec![BeamState {
        subs: Vec::new(),
        chain_acc: vec![0.0; problem.num_networks()],
        energy_nj: 0.0,
    }];
    for depth in 0..bounds.positions.len() {
        let (n, l) = bounds.positions[depth];
        let row = &problem.costs.networks[n].layers[l];
        let mut next =
            Vec::with_capacity(frontier.len().min(width) * bounds.sub_order[depth].len());
        for state in &frontier {
            for &sub in &bounds.sub_order[depth] {
                let cost = &row.per_sub[sub];
                let new_chain = state.chain_acc[n] + cost.latency_cycles;
                if new_chain + bounds.chain_suffix_lb[n][l + 1] > problem.latency_constraint {
                    continue;
                }
                let energy = state.energy_nj + cost.energy_nj;
                if let Some(incumbent) = &best {
                    if energy + bounds.energy_suffix_lb[depth + 1] >= incumbent.energy_nj {
                        continue;
                    }
                }
                let mut subs = Vec::with_capacity(depth + 1);
                subs.extend_from_slice(&state.subs);
                subs.push(sub);
                let mut chain_acc = state.chain_acc.clone();
                chain_acc[n] = new_chain;
                next.push(BeamState {
                    subs,
                    chain_acc,
                    energy_nj: energy,
                });
            }
        }
        // Keep the `width` most promising states.  The remaining-energy
        // suffix bound is a constant at one depth, so ranking by
        // accumulated energy *is* ranking by (energy + suffix bound).  The
        // sort is stable: ties keep parent-order × cheapest-sub-first
        // insertion order, making the beam deterministic.
        if next.len() > width {
            next.sort_by(|a, b| a.energy_nj.total_cmp(&b.energy_nj));
            next.truncate(width);
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Evaluate the surviving complete assignments with the real list
    // scheduler; chain bounds are admissible, not exact, so a leaf can
    // still miss the constraint once contention and switch penalties bite.
    let mut assignment = Assignment::new(
        problem
            .costs
            .networks
            .iter()
            .map(|network| vec![0usize; network.layers.len()])
            .collect(),
    );
    for state in &frontier {
        if state.subs.len() != bounds.positions.len() {
            continue;
        }
        for (depth, &(n, l)) in bounds.positions.iter().enumerate() {
            assignment.set(n, l, state.subs[depth]);
        }
        let makespan = sim.makespan(&assignment);
        if makespan > problem.latency_constraint {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|incumbent| state.energy_nj < incumbent.energy_nj)
        {
            best = Some(MappingSolution {
                assignment: assignment.clone(),
                latency_cycles: makespan,
                energy_nj: state.energy_nj,
                feasible: true,
            });
        }
    }

    match best {
        Some(mut solution) => {
            polish(problem, &mut sim, &mut solution);
            solution
        }
        None => infeasible_solution(problem),
    }
}

/// [`solve_beam`] with no width truncation: enumerates every prefix the
/// branch and bound would keep, so the returned energy is exact for
/// instances the exact solver covers.  Used by the differential tests; the
/// frontier is only bounded by pruning, so do not call this on instances
/// far past [`crate::exact::EXACT_LAYER_LIMIT`].
pub fn solve_beam_unbounded(problem: &HapProblem) -> MappingSolution {
    solve_beam(problem, usize::MAX)
}

/// Greedy delta-evaluated improvement of a feasible solution: repeatedly
/// take the largest-saving single-layer move whose checkpoint-replayed
/// makespan stays within the constraint.  Width-truncated beams land on
/// good-but-improvable leaves; this recovers the cheap moves the
/// truncation dropped while reusing the already-warm [`Simulator`].
fn polish(problem: &HapProblem, sim: &mut Simulator, solution: &mut MappingSolution) {
    if !solution.feasible {
        return;
    }
    let makespan = sim.prepare(&solution.assignment);
    debug_assert!(makespan <= problem.latency_constraint);
    // Each accepted move strictly reduces energy; the pass cap only guards
    // against pathological cost tables with unboundedly many tiny savings.
    let max_moves = 4 * problem.costs.total_layers().max(1);
    let mut candidates: Vec<(usize, usize, usize, usize, f64)> = Vec::new();
    for _ in 0..max_moves {
        candidates.clear();
        for (n, network) in problem.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let current_sub = solution.assignment.sub_for(n, l);
                let current_cost = &row.per_sub[current_sub];
                for (sub, cost) in row.per_sub.iter().enumerate() {
                    if sub == current_sub || !cost.is_feasible() {
                        continue;
                    }
                    let saving = current_cost.energy_nj - cost.energy_nj;
                    if saving > 0.0 {
                        candidates.push((candidates.len(), n, l, sub, saving));
                    }
                }
            }
        }
        candidates.sort_unstable_by(|a, b| b.4.total_cmp(&a.4).then(a.0.cmp(&b.0)));
        let mut accepted = false;
        for &(_, n, l, sub, saving) in &candidates {
            let from_sub = solution.assignment.sub_for(n, l);
            solution.assignment.set(n, l, sub);
            let trial = sim.trial_makespan(&solution.assignment, n, l, problem.latency_constraint);
            if trial <= problem.latency_constraint {
                solution.latency_cycles = sim.commit_trial(&solution.assignment, n, l);
                solution.energy_nj -= saving;
                accepted = true;
                break;
            }
            solution.assignment.set(n, l, from_sub);
        }
        if !accepted {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact_unseeded, EXACT_LAYER_LIMIT};
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn tiny_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1024, 16),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    fn realistic_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs =
            vec![Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    #[test]
    fn unbounded_beam_matches_unseeded_exact_energy() {
        for constraint in [2.0e6_f64, 5.0e6, 1.0e9] {
            let problem = tiny_problem(constraint);
            assert!(problem.costs.total_layers() <= EXACT_LAYER_LIMIT);
            let exact = solve_exact_unseeded(&problem).unwrap();
            let beam = solve_beam_unbounded(&problem);
            assert_eq!(beam.feasible, exact.feasible, "at constraint {constraint}");
            if exact.feasible {
                assert!(
                    (beam.energy_nj - exact.energy_nj).abs() <= 1e-9 * exact.energy_nj.max(1.0),
                    "beam {} vs exact {} at constraint {constraint}",
                    beam.energy_nj,
                    exact.energy_nj
                );
            }
        }
    }

    #[test]
    fn unbounded_beam_matches_exact_on_paper_sized_instances() {
        for constraint in [8.0e5_f64, 2.0e6, 1.0e9] {
            let problem = realistic_problem(constraint);
            let exact = solve_exact_unseeded(&problem).unwrap();
            let beam = solve_beam_unbounded(&problem);
            assert_eq!(beam.feasible, exact.feasible, "at constraint {constraint}");
            if exact.feasible {
                assert!(
                    (beam.energy_nj - exact.energy_nj).abs() <= 1e-9 * exact.energy_nj.max(1.0),
                    "beam {} vs exact {} at constraint {constraint}",
                    beam.energy_nj,
                    exact.energy_nj
                );
            }
        }
    }

    #[test]
    fn beam_is_never_worse_than_the_heuristic() {
        for width in [1usize, 4, DEFAULT_BEAM_WIDTH] {
            for constraint in [8.0e5_f64, 2.0e6, 5.0e6, 1.0e9] {
                let problem = realistic_problem(constraint);
                let heuristic = solve_heuristic(&problem);
                let beam = solve_beam(&problem, width);
                if heuristic.feasible {
                    assert!(beam.feasible, "width {width}, constraint {constraint}");
                    assert!(
                        beam.energy_nj <= heuristic.energy_nj + 1e-9 * heuristic.energy_nj,
                        "width {width} beam {} worse than heuristic {} at {constraint}",
                        beam.energy_nj,
                        heuristic.energy_nj
                    );
                }
            }
        }
    }

    #[test]
    fn beam_is_deterministic() {
        let problem = realistic_problem(2.0e6);
        let a = solve_beam(&problem, 8);
        let b = solve_beam(&problem, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn widening_the_beam_never_increases_energy() {
        let problem = realistic_problem(2.0e6);
        let mut previous = f64::INFINITY;
        for width in [1usize, 2, 8, 64] {
            let solution = solve_beam(&problem, width);
            assert!(solution.feasible);
            assert!(
                solution.energy_nj <= previous + 1e-9 * previous.min(1e18),
                "width {width} regressed: {} vs {previous}",
                solution.energy_nj
            );
            previous = solution.energy_nj;
        }
    }

    #[test]
    fn infeasible_constraint_returns_the_shared_sentinel() {
        let problem = tiny_problem(1.0);
        let beam = solve_beam(&problem, DEFAULT_BEAM_WIDTH);
        let heuristic = solve_heuristic(&problem);
        assert_eq!(beam, heuristic);
        assert!(!beam.feasible);
        assert!(beam.latency_cycles.is_finite());
    }

    #[test]
    fn unschedulable_instance_keeps_the_uniform_sentinel() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::inactive(Dataflow::Nvdla),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let solution = solve_beam(&HapProblem::new(costs, 1e9), 4);
        assert!(!solution.feasible);
        assert!(solution.latency_cycles.is_infinite());
    }

    #[test]
    fn beam_solution_respects_latency_constraint_when_feasible() {
        for constraint in [8.0e5_f64, 2.0e6, 1.0e9] {
            let problem = realistic_problem(constraint);
            let solution = solve_beam(&problem, DEFAULT_BEAM_WIDTH);
            if solution.feasible {
                assert!(solution.latency_cycles <= constraint);
                let recomputed = problem.energy_of(&solution.assignment);
                assert!(
                    (recomputed - solution.energy_nj).abs() <= 1e-9 * recomputed.max(1.0),
                    "energy bookkeeping drifted: {} vs {recomputed}",
                    solution.energy_nj
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_width_is_rejected() {
        solve_beam(&tiny_problem(1e9), 0);
    }
}
