//! The feasibility theorem of the paper.
//!
//! *Theorem (Section IV ③).*  Given a layer set `D`, a sub-accelerator set
//! `AIC`, and design specs on latency `LS` and energy `ES`, the design
//! specs can be met if and only if `re = HAP(D, AIC, LS) <= ES`.
//!
//! In other words: solve the heterogeneous assignment problem for minimum
//! energy under the latency bound; the workload fits the specs exactly when
//! that minimum energy is itself within the energy bound.

use crate::problem::{HapProblem, MappingSolution};

/// Check the latency/energy design specs for a solved HAP instance.
///
/// Returns `true` when the mapping is feasible with respect to the
/// problem's latency constraint **and** its energy does not exceed
/// `energy_spec` — i.e. the theorem's condition `HAP(D, AIC, LS) <= ES`.
pub fn meets_design_specs(solution: &MappingSolution, energy_spec: f64) -> bool {
    solution.feasible && solution.energy_nj <= energy_spec
}

/// Convenience wrapper: solve with the heuristic and apply the theorem.
pub fn check_specs_heuristic(problem: &HapProblem, energy_spec: f64) -> bool {
    let solution = crate::heuristic::solve_heuristic(problem);
    meets_design_specs(&solution, energy_spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::solve_heuristic;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn problem(latency: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 64, 1, 64, 1, 128, 1])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency)
    }

    #[test]
    fn generous_specs_are_met() {
        let p = problem(1e9);
        let s = solve_heuristic(&p);
        assert!(meets_design_specs(&s, 1e12));
        assert!(check_specs_heuristic(&p, 1e12));
    }

    #[test]
    fn tight_energy_spec_fails_even_with_feasible_latency() {
        let p = problem(1e9);
        let s = solve_heuristic(&p);
        assert!(s.feasible);
        assert!(!meets_design_specs(&s, s.energy_nj * 0.5));
    }

    #[test]
    fn infeasible_latency_always_fails() {
        let p = problem(1.0);
        let s = solve_heuristic(&p);
        assert!(!meets_design_specs(&s, f64::INFINITY));
        assert!(!check_specs_heuristic(&p, f64::INFINITY));
    }

    #[test]
    fn theorem_boundary_is_inclusive() {
        let p = problem(1e9);
        let s = solve_heuristic(&p);
        assert!(meets_design_specs(&s, s.energy_nj));
    }
}
