//! Event-driven list scheduler.
//!
//! Turns a layer-to-sub-accelerator assignment into a concrete schedule.
//! Layers of one network form a dependency chain (layer `l` cannot start
//! before layer `l - 1` finished); different networks are independent and
//! compete for sub-accelerators, which execute one layer at a time.  The
//! scheduler greedily dispatches, at every step, the ready layer that can
//! start earliest — a standard list-scheduling policy that matches the
//! paper's `sch(aic_k)` function.

use crate::problem::{Assignment, HapProblem};
use serde::{Deserialize, Serialize};

/// One scheduled layer execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledSlot {
    /// Network index within the workload.
    pub network: usize,
    /// Layer index within the network.
    pub layer: usize,
    /// Sub-accelerator executing the layer.
    pub sub: usize,
    /// Start time (cycles).
    pub start: f64,
    /// End time (cycles).
    pub end: f64,
}

/// A complete schedule of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Executed slots in dispatch order.
    pub slots: Vec<ScheduledSlot>,
    /// Completion time of each network.
    pub network_finish: Vec<f64>,
    /// Busy time accumulated on each sub-accelerator.
    pub sub_busy: Vec<f64>,
    /// Makespan of the whole workload (cycles).
    pub makespan: f64,
}

impl Schedule {
    /// Utilisation of a sub-accelerator: busy time over makespan.
    /// Returns 0 for an unused sub-accelerator or an empty schedule.
    pub fn sub_utilization(&self, sub: usize) -> f64 {
        if self.makespan <= 0.0 || !self.makespan.is_finite() {
            return 0.0;
        }
        self.sub_busy.get(sub).copied().unwrap_or(0.0) / self.makespan
    }

    /// `true` when the schedule was fully constructed (no infeasible
    /// mapping was encountered).
    pub fn is_complete(&self) -> bool {
        self.makespan.is_finite()
    }
}

/// Simulate the execution of `assignment` for `problem` and return the
/// resulting schedule.
///
/// If any layer is assigned to a sub-accelerator that cannot execute it
/// (infeasible cost), the returned schedule has an infinite makespan.
pub fn simulate(problem: &HapProblem, assignment: &Assignment) -> Schedule {
    let num_networks = problem.num_networks();
    let num_subs = problem.num_subs();
    let mut next_layer = vec![0usize; num_networks];
    let mut network_ready = vec![0.0f64; num_networks];
    let mut network_prev_sub: Vec<Option<usize>> = vec![None; num_networks];
    let mut sub_free = vec![0.0f64; num_subs];
    let mut sub_busy = vec![0.0f64; num_subs];
    let mut slots = Vec::with_capacity(problem.costs.total_layers());
    let mut network_finish = vec![0.0f64; num_networks];

    let total_layers = problem.costs.total_layers();
    for _ in 0..total_layers {
        // Pick the ready layer with the earliest possible start time.
        let mut best: Option<(usize, f64)> = None;
        for n in 0..num_networks {
            let l = next_layer[n];
            if l >= problem.costs.networks[n].layers.len() {
                continue;
            }
            let sub = assignment.sub_for(n, l);
            let mut ready = network_ready[n];
            if let Some(prev) = network_prev_sub[n] {
                if prev != sub {
                    ready += problem.switch_penalty_cycles;
                }
            }
            let start = ready.max(sub_free[sub]);
            match best {
                Some((_, best_start)) if best_start <= start => {}
                _ => best = Some((n, start)),
            }
        }
        let (n, start) = best.expect("at least one network has a pending layer");
        let l = next_layer[n];
        let sub = assignment.sub_for(n, l);
        let cost = &problem.costs.networks[n].layers[l].per_sub[sub];
        if !cost.is_feasible() {
            return Schedule {
                slots,
                network_finish,
                sub_busy,
                makespan: f64::INFINITY,
            };
        }
        let end = start + cost.latency_cycles;
        slots.push(ScheduledSlot {
            network: n,
            layer: l,
            sub,
            start,
            end,
        });
        sub_busy[sub] += cost.latency_cycles;
        sub_free[sub] = end;
        network_ready[n] = end;
        network_prev_sub[n] = Some(sub);
        network_finish[n] = end;
        next_layer[n] += 1;
    }

    let makespan = network_finish.iter().cloned().fold(0.0f64, f64::max);
    Schedule {
        slots,
        network_finish,
        sub_busy,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn problem_two_networks() -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]),
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 1, 64, 1, 64, 1]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, 1e9)
    }

    #[test]
    fn schedule_executes_every_layer_exactly_once() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        assert_eq!(schedule.slots.len(), problem.costs.total_layers());
        assert!(schedule.is_complete());
    }

    #[test]
    fn chain_dependencies_are_respected() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        for n in 0..problem.num_networks() {
            let mut last_end = 0.0;
            for slot in schedule.slots.iter().filter(|s| s.network == n) {
                assert!(
                    slot.start + 1e-9 >= last_end,
                    "layer started before its predecessor finished"
                );
                last_end = slot.end;
            }
        }
    }

    #[test]
    fn sub_accelerator_never_runs_two_layers_at_once() {
        let problem = problem_two_networks();
        // Alternate layers between subs to force contention.
        let assignment = Assignment::new(
            problem
                .costs
                .networks
                .iter()
                .map(|n| (0..n.layers.len()).map(|l| l % 2).collect())
                .collect(),
        );
        let schedule = simulate(&problem, &assignment);
        for sub in 0..problem.num_subs() {
            let mut intervals: Vec<(f64, f64)> = schedule
                .slots
                .iter()
                .filter(|s| s.sub == sub)
                .map(|s| (s.start, s.end))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 + 1e-9 >= w[0].1,
                    "overlapping execution on sub {sub}"
                );
            }
        }
    }

    #[test]
    fn parallel_networks_on_separate_subs_overlap() {
        // Two identical sub-accelerators so the comparison isolates
        // task-level parallelism from dataflow affinity.
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]),
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 1, 64, 1, 64, 1]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        // Network 0 on sub 0, network 1 on sub 1: task-level parallelism.
        let parallel = Assignment::new(vec![
            vec![0; problem.costs.networks[0].layers.len()],
            vec![1; problem.costs.networks[1].layers.len()],
        ]);
        let serial = Assignment::uniform(&problem.costs, 0);
        let par_schedule = simulate(&problem, &parallel);
        let ser_schedule = simulate(&problem, &serial);
        assert!(par_schedule.makespan < ser_schedule.makespan);
        // Makespan with parallel execution equals the slower network.
        let expected = par_schedule
            .network_finish
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!((par_schedule.makespan - expected).abs() < 1e-6);
    }

    #[test]
    fn switch_penalty_increases_makespan() {
        let problem = problem_two_networks();
        let alternating = Assignment::new(
            problem
                .costs
                .networks
                .iter()
                .map(|n| (0..n.layers.len()).map(|l| l % 2).collect())
                .collect(),
        );
        let base = simulate(&problem, &alternating).makespan;
        let penalised =
            simulate(&problem.clone().with_switch_penalty(10_000.0), &alternating).makespan;
        assert!(penalised > base);
    }

    #[test]
    fn infeasible_assignment_yields_infinite_makespan() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        let assignment = Assignment::uniform(&problem.costs, 1);
        let schedule = simulate(&problem, &assignment);
        assert!(!schedule.is_complete());
    }

    #[test]
    fn utilization_is_bounded_by_one() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        assert!(schedule.sub_utilization(0) > 0.0);
        assert!(schedule.sub_utilization(0) <= 1.0 + 1e-9);
        assert_eq!(schedule.sub_utilization(1), 0.0);
        assert_eq!(schedule.sub_utilization(99), 0.0);
    }
}
