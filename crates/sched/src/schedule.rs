//! Event-driven list scheduler.
//!
//! Turns a layer-to-sub-accelerator assignment into a concrete schedule.
//! Layers of one network form a dependency chain (layer `l` cannot start
//! before layer `l - 1` finished); different networks are independent and
//! compete for sub-accelerators, which execute one layer at a time.  The
//! scheduler greedily dispatches, at every step, the ready layer that can
//! start earliest — a standard list-scheduling policy that matches the
//! paper's `sch(aic_k)` function.
//!
//! Two entry points share one dispatch implementation:
//!
//! * [`simulate`] — one-shot convenience producing a full [`Schedule`];
//! * [`Simulator`] — reusable scratch state for hot loops.  A solver keeps
//!   one `Simulator` alive, calls [`Simulator::prepare`] once per accepted
//!   assignment (which records a dispatch checkpoint at every layer
//!   position), and then evaluates single-layer re-assignments with
//!   [`Simulator::trial_makespan`], which resumes dispatch from the moved
//!   layer's checkpoint instead of replaying the whole workload — no
//!   allocation, and only the suffix of the schedule is re-dispatched.

use crate::problem::{Assignment, HapProblem};
use serde::{Deserialize, Serialize};

/// Scratch sentinel for "no previous sub-accelerator" on a network chain.
const NO_SUB: usize = usize::MAX;

/// One scheduled layer execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledSlot {
    /// Network index within the workload.
    pub network: usize,
    /// Layer index within the network.
    pub layer: usize,
    /// Sub-accelerator executing the layer.
    pub sub: usize,
    /// Start time (cycles).
    pub start: f64,
    /// End time (cycles).
    pub end: f64,
}

/// A complete schedule of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Executed slots in dispatch order.
    pub slots: Vec<ScheduledSlot>,
    /// Completion time of each network.
    pub network_finish: Vec<f64>,
    /// Busy time accumulated on each sub-accelerator.
    pub sub_busy: Vec<f64>,
    /// Makespan of the whole workload (cycles).
    pub makespan: f64,
}

impl Schedule {
    /// Utilisation of a sub-accelerator: busy time over makespan.
    /// Returns 0 for an unused sub-accelerator or an empty schedule.
    pub fn sub_utilization(&self, sub: usize) -> f64 {
        if self.makespan <= 0.0 || !self.makespan.is_finite() {
            return 0.0;
        }
        self.sub_busy.get(sub).copied().unwrap_or(0.0) / self.makespan
    }

    /// `true` when the schedule was fully constructed (no infeasible
    /// mapping was encountered).
    pub fn is_complete(&self) -> bool {
        self.makespan.is_finite()
    }
}

/// Simulate the execution of `assignment` for `problem` and return the
/// resulting schedule.
///
/// If any layer is assigned to a sub-accelerator that cannot execute it
/// (infeasible cost), the returned schedule has an infinite makespan.
///
/// This is the one-shot convenience over [`Simulator`]; callers that
/// simulate the same problem repeatedly should keep a `Simulator` alive
/// instead.
pub fn simulate(problem: &HapProblem, assignment: &Assignment) -> Schedule {
    Simulator::new(problem).schedule(assignment)
}

/// Reusable list-scheduling simulator.
///
/// Holds every dispatch buffer the scheduler needs, sized once for a
/// problem, so repeated simulations — the inner loop of
/// [`solve_heuristic`](crate::solve_heuristic) — allocate nothing.  On top
/// of plain re-simulation it supports **delta evaluation**: after
/// [`prepare`](Self::prepare) records per-layer dispatch checkpoints for a
/// baseline assignment, [`trial_makespan`](Self::trial_makespan) evaluates
/// a single-layer re-assignment by restoring the moved layer's checkpoint
/// and re-dispatching only the suffix of the schedule.  Both paths run the
/// exact same dispatch step, so every result is bit-identical to
/// [`simulate`].
#[derive(Debug, Clone)]
pub struct Simulator {
    num_networks: usize,
    num_subs: usize,
    total_layers: usize,
    layer_counts: Vec<usize>,
    /// Flat checkpoint index of each network's layer 0.
    offsets: Vec<usize>,
    /// Effective latency of every (layer position, sub) pair, flattened to
    /// `position * num_subs + sub`; infeasible mappings hold infinity.
    /// Baked at construction so the dispatch loop is a single load away
    /// from each cost.
    lat: Vec<f64>,
    switch_penalty: f64,
    // Live dispatch scratch.
    next_layer: Vec<usize>,
    network_ready: Vec<f64>,
    network_prev_sub: Vec<usize>,
    sub_free: Vec<f64>,
    sub_busy: Vec<f64>,
    network_finish: Vec<f64>,
    dispatched: usize,
    // Per-layer-position checkpoints (allocated on the first `prepare`).
    // Checkpoint `offsets[n] + l` is the dispatch state at the moment layer
    // `l` became the head of network `n` — the last point of the baseline
    // dispatch that is provably independent of `assignment[n][l]`.
    ck_ready: bool,
    ck_dispatched: Vec<usize>,
    ck_next_layer: Vec<usize>,
    ck_network_ready: Vec<f64>,
    ck_prev_sub: Vec<usize>,
    ck_sub_free: Vec<f64>,
    ck_network_finish: Vec<f64>,
}

impl Simulator {
    /// A simulator bound to `problem`: shape (layer counts,
    /// sub-accelerator count), per-mapping latencies and the switch
    /// penalty are snapshotted at construction, so every later call
    /// dispatches from flat arrays without touching the cost table.
    pub fn new(problem: &HapProblem) -> Self {
        let num_networks = problem.num_networks();
        let num_subs = problem.num_subs();
        let layer_counts: Vec<usize> = problem
            .costs
            .networks
            .iter()
            .map(|n| n.layers.len())
            .collect();
        let mut offsets = Vec::with_capacity(num_networks);
        let mut total_layers = 0;
        for &count in &layer_counts {
            offsets.push(total_layers);
            total_layers += count;
        }
        let mut lat = Vec::with_capacity(total_layers * num_subs);
        for network in &problem.costs.networks {
            for row in &network.layers {
                for cost in &row.per_sub {
                    lat.push(if cost.is_feasible() {
                        cost.latency_cycles
                    } else {
                        f64::INFINITY
                    });
                }
            }
        }
        Self {
            num_networks,
            num_subs,
            total_layers,
            layer_counts,
            offsets,
            lat,
            switch_penalty: problem.switch_penalty_cycles,
            next_layer: vec![0; num_networks],
            network_ready: vec![0.0; num_networks],
            network_prev_sub: vec![NO_SUB; num_networks],
            sub_free: vec![0.0; num_subs],
            sub_busy: vec![0.0; num_subs],
            network_finish: vec![0.0; num_networks],
            dispatched: 0,
            ck_ready: false,
            ck_dispatched: Vec::new(),
            ck_next_layer: Vec::new(),
            ck_network_ready: Vec::new(),
            ck_prev_sub: Vec::new(),
            ck_sub_free: Vec::new(),
            ck_network_finish: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.next_layer.fill(0);
        self.network_ready.fill(0.0);
        self.network_prev_sub.fill(NO_SUB);
        self.sub_free.fill(0.0);
        self.sub_busy.fill(0.0);
        self.network_finish.fill(0.0);
        self.dispatched = 0;
    }

    fn makespan_now(&self) -> f64 {
        self.network_finish.iter().cloned().fold(0.0f64, f64::max)
    }

    /// Dispatch the ready layer with the earliest possible start time.
    /// Returns `None` when that layer's mapping is infeasible.
    #[inline]
    fn dispatch_step(&mut self, assignment: &Assignment) -> Option<ScheduledSlot> {
        let mut best: Option<(usize, f64)> = None;
        for n in 0..self.num_networks {
            let l = self.next_layer[n];
            if l >= self.layer_counts[n] {
                continue;
            }
            let sub = assignment.sub_for(n, l);
            let mut ready = self.network_ready[n];
            let prev = self.network_prev_sub[n];
            if prev != NO_SUB && prev != sub {
                ready += self.switch_penalty;
            }
            let start = ready.max(self.sub_free[sub]);
            match best {
                Some((_, best_start)) if best_start <= start => {}
                _ => best = Some((n, start)),
            }
        }
        let (n, start) = best.expect("at least one network has a pending layer");
        let l = self.next_layer[n];
        let sub = assignment.sub_for(n, l);
        let latency = self.lat[(self.offsets[n] + l) * self.num_subs + sub];
        if !latency.is_finite() {
            return None;
        }
        let end = start + latency;
        self.sub_busy[sub] += latency;
        self.sub_free[sub] = end;
        self.network_ready[n] = end;
        self.network_prev_sub[n] = sub;
        self.network_finish[n] = end;
        self.next_layer[n] += 1;
        self.dispatched += 1;
        Some(ScheduledSlot {
            network: n,
            layer: l,
            sub,
            start,
            end,
        })
    }

    /// Makespan of `assignment` (no slot recording, no allocation).
    /// Returns infinity when some layer's mapping is infeasible.
    pub fn makespan(&mut self, assignment: &Assignment) -> f64 {
        self.reset();
        for _ in 0..self.total_layers {
            if self.dispatch_step(assignment).is_none() {
                return f64::INFINITY;
            }
        }
        self.makespan_now()
    }

    /// Full schedule of `assignment`, identical to [`simulate`].
    pub fn schedule(&mut self, assignment: &Assignment) -> Schedule {
        self.reset();
        let mut slots = Vec::with_capacity(self.total_layers);
        for _ in 0..self.total_layers {
            match self.dispatch_step(assignment) {
                Some(slot) => slots.push(slot),
                None => {
                    return Schedule {
                        slots,
                        network_finish: self.network_finish.clone(),
                        sub_busy: self.sub_busy.clone(),
                        makespan: f64::INFINITY,
                    }
                }
            }
        }
        Schedule {
            slots,
            network_finish: self.network_finish.clone(),
            sub_busy: self.sub_busy.clone(),
            makespan: self.makespan_now(),
        }
    }

    fn ensure_checkpoint_storage(&mut self) {
        let nets = self.total_layers * self.num_networks;
        let subs = self.total_layers * self.num_subs;
        if self.ck_next_layer.len() != nets {
            self.ck_dispatched = vec![0; self.total_layers];
            self.ck_next_layer = vec![0; nets];
            self.ck_network_ready = vec![0.0; nets];
            self.ck_prev_sub = vec![NO_SUB; nets];
            self.ck_network_finish = vec![0.0; nets];
            self.ck_sub_free = vec![0.0; subs];
        }
    }

    fn store_checkpoint(&mut self, position: usize) {
        let (n0, n1) = (
            position * self.num_networks,
            (position + 1) * self.num_networks,
        );
        let (s0, s1) = (position * self.num_subs, (position + 1) * self.num_subs);
        self.ck_dispatched[position] = self.dispatched;
        self.ck_next_layer[n0..n1].copy_from_slice(&self.next_layer);
        self.ck_network_ready[n0..n1].copy_from_slice(&self.network_ready);
        self.ck_prev_sub[n0..n1].copy_from_slice(&self.network_prev_sub);
        self.ck_network_finish[n0..n1].copy_from_slice(&self.network_finish);
        self.ck_sub_free[s0..s1].copy_from_slice(&self.sub_free);
    }

    fn restore_checkpoint(&mut self, position: usize) {
        let (n0, n1) = (
            position * self.num_networks,
            (position + 1) * self.num_networks,
        );
        let (s0, s1) = (position * self.num_subs, (position + 1) * self.num_subs);
        self.dispatched = self.ck_dispatched[position];
        self.next_layer.copy_from_slice(&self.ck_next_layer[n0..n1]);
        self.network_ready
            .copy_from_slice(&self.ck_network_ready[n0..n1]);
        self.network_prev_sub
            .copy_from_slice(&self.ck_prev_sub[n0..n1]);
        self.network_finish
            .copy_from_slice(&self.ck_network_finish[n0..n1]);
        self.sub_free.copy_from_slice(&self.ck_sub_free[s0..s1]);
    }

    /// Dispatch `assignment` fully while recording a checkpoint at every
    /// layer position, enabling [`trial_makespan`](Self::trial_makespan)
    /// for single-layer deviations from this baseline.  Returns the
    /// baseline makespan (infinity — and no usable checkpoints — when some
    /// mapping is infeasible).
    pub fn prepare(&mut self, assignment: &Assignment) -> f64 {
        self.ensure_checkpoint_storage();
        self.reset();
        self.ck_ready = false;
        // Every network's first layer is head from the very start.
        for n in 0..self.num_networks {
            if self.layer_counts[n] > 0 {
                let position = self.offsets[n];
                self.store_checkpoint(position);
            }
        }
        for _ in 0..self.total_layers {
            match self.dispatch_step(assignment) {
                Some(slot) => {
                    // Layer `slot.layer + 1` just became network head: the
                    // dispatch state up to here cannot depend on its
                    // assignment, so it is a valid resume point.
                    if slot.layer + 1 < self.layer_counts[slot.network] {
                        let position = self.offsets[slot.network] + slot.layer + 1;
                        self.store_checkpoint(position);
                    }
                }
                None => return f64::INFINITY,
            }
        }
        self.ck_ready = true;
        self.makespan_now()
    }

    /// Makespan of the prepared baseline with layer `(network, layer)`
    /// re-assigned (the caller mutates the [`Assignment`] before the call
    /// and undoes it after — set-and-undo, no clone).  Dispatch resumes
    /// from the moved layer's checkpoint; `cap` short-circuits the replay
    /// to infinity as soon as any layer finishes after `cap` cycles (sound
    /// because the makespan is the maximum finish time).
    ///
    /// # Panics
    ///
    /// Panics if [`prepare`](Self::prepare) has not completed on this
    /// problem, or if the position is out of range.
    pub fn trial_makespan(
        &mut self,
        assignment: &Assignment,
        network: usize,
        layer: usize,
        cap: f64,
    ) -> f64 {
        assert!(
            self.ck_ready,
            "Simulator::prepare must succeed before trial_makespan"
        );
        let position = self.offsets[network] + layer;
        self.restore_checkpoint(position);
        if nasaic_telemetry::enabled() {
            // How much of the workload the checkpoint actually saved: the
            // replayed suffix length, in layers (see docs/observability.md).
            use std::sync::{Arc, OnceLock};
            static REPLAY: OnceLock<Arc<nasaic_telemetry::Histogram>> = OnceLock::new();
            REPLAY
                .get_or_init(|| {
                    nasaic_telemetry::global().histogram("nasaic_sched_trial_replay_layers", &[])
                })
                .record((self.total_layers - self.dispatched) as u64);
        }
        for _ in self.dispatched..self.total_layers {
            match self.dispatch_step(assignment) {
                Some(slot) => {
                    if slot.end > cap {
                        return f64::INFINITY;
                    }
                }
                None => return f64::INFINITY,
            }
        }
        self.makespan_now()
    }

    /// Accept a trial: `assignment` (already mutated at `(network,
    /// layer)`) becomes the new baseline.  Replays from the moved layer's
    /// checkpoint like [`trial_makespan`](Self::trial_makespan), but
    /// re-records the checkpoints of every layer that becomes a network
    /// head during the replayed suffix — all earlier checkpoints belong to
    /// the unchanged dispatch prefix and stay valid — so accepting a move
    /// costs one suffix re-dispatch instead of a full
    /// [`prepare`](Self::prepare).  Returns the new baseline makespan.
    ///
    /// # Panics
    ///
    /// Panics if [`prepare`](Self::prepare) has not completed on this
    /// problem, or if the position is out of range.
    pub fn commit_trial(&mut self, assignment: &Assignment, network: usize, layer: usize) -> f64 {
        assert!(
            self.ck_ready,
            "Simulator::prepare must succeed before commit_trial"
        );
        let position = self.offsets[network] + layer;
        self.restore_checkpoint(position);
        for _ in self.dispatched..self.total_layers {
            match self.dispatch_step(assignment) {
                Some(slot) => {
                    if slot.layer + 1 < self.layer_counts[slot.network] {
                        let successor = self.offsets[slot.network] + slot.layer + 1;
                        self.store_checkpoint(successor);
                    }
                }
                None => {
                    self.ck_ready = false;
                    return f64::INFINITY;
                }
            }
        }
        self.makespan_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn problem_two_networks() -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]),
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 1, 64, 1, 64, 1]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, 1e9)
    }

    #[test]
    fn schedule_executes_every_layer_exactly_once() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        assert_eq!(schedule.slots.len(), problem.costs.total_layers());
        assert!(schedule.is_complete());
    }

    #[test]
    fn chain_dependencies_are_respected() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        for n in 0..problem.num_networks() {
            let mut last_end = 0.0;
            for slot in schedule.slots.iter().filter(|s| s.network == n) {
                assert!(
                    slot.start + 1e-9 >= last_end,
                    "layer started before its predecessor finished"
                );
                last_end = slot.end;
            }
        }
    }

    #[test]
    fn sub_accelerator_never_runs_two_layers_at_once() {
        let problem = problem_two_networks();
        // Alternate layers between subs to force contention.
        let assignment = Assignment::new(
            problem
                .costs
                .networks
                .iter()
                .map(|n| (0..n.layers.len()).map(|l| l % 2).collect())
                .collect(),
        );
        let schedule = simulate(&problem, &assignment);
        for sub in 0..problem.num_subs() {
            let mut intervals: Vec<(f64, f64)> = schedule
                .slots
                .iter()
                .filter(|s| s.sub == sub)
                .map(|s| (s.start, s.end))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 + 1e-9 >= w[0].1,
                    "overlapping execution on sub {sub}"
                );
            }
        }
    }

    #[test]
    fn parallel_networks_on_separate_subs_overlap() {
        // Two identical sub-accelerators so the comparison isolates
        // task-level parallelism from dataflow affinity.
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]),
            Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 1, 64, 1, 64, 1]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        // Network 0 on sub 0, network 1 on sub 1: task-level parallelism.
        let parallel = Assignment::new(vec![
            vec![0; problem.costs.networks[0].layers.len()],
            vec![1; problem.costs.networks[1].layers.len()],
        ]);
        let serial = Assignment::uniform(&problem.costs, 0);
        let par_schedule = simulate(&problem, &parallel);
        let ser_schedule = simulate(&problem, &serial);
        assert!(par_schedule.makespan < ser_schedule.makespan);
        // Makespan with parallel execution equals the slower network.
        let expected = par_schedule
            .network_finish
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!((par_schedule.makespan - expected).abs() < 1e-6);
    }

    #[test]
    fn switch_penalty_increases_makespan() {
        let problem = problem_two_networks();
        let alternating = Assignment::new(
            problem
                .costs
                .networks
                .iter()
                .map(|n| (0..n.layers.len()).map(|l| l % 2).collect())
                .collect(),
        );
        let base = simulate(&problem, &alternating).makespan;
        let penalised =
            simulate(&problem.clone().with_switch_penalty(10_000.0), &alternating).makespan;
        assert!(penalised > base);
    }

    #[test]
    fn infeasible_assignment_yields_infinite_makespan() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        let assignment = Assignment::uniform(&problem.costs, 1);
        let schedule = simulate(&problem, &assignment);
        assert!(!schedule.is_complete());
    }

    #[test]
    fn utilization_is_bounded_by_one() {
        let problem = problem_two_networks();
        let assignment = Assignment::uniform(&problem.costs, 0);
        let schedule = simulate(&problem, &assignment);
        assert!(schedule.sub_utilization(0) > 0.0);
        assert!(schedule.sub_utilization(0) <= 1.0 + 1e-9);
        assert_eq!(schedule.sub_utilization(1), 0.0);
        assert_eq!(schedule.sub_utilization(99), 0.0);
    }
}
