//! Ratio heuristic for the heterogeneous assignment problem.
//!
//! The paper notes that the optimal HAP solution could be obtained with an
//! ILP but that ILP is too slow inside a search loop, and instead applies
//! the efficient heuristic of Shao et al. (TPDS 2005).  The heuristic
//! implemented here follows the same idea:
//!
//! 1. start from the **latency-optimal** assignment (every layer on its
//!    fastest feasible sub-accelerator); if even this violates the latency
//!    constraint the instance is infeasible;
//! 2. repeatedly pick the single-layer re-assignment with the best
//!    *energy-saved per latency-added* ratio that keeps the schedule within
//!    the latency constraint, and apply it;
//! 3. stop when no improving move remains.

use crate::problem::{Assignment, HapProblem, MappingSolution};
use crate::schedule::simulate;

/// Solve a HAP instance with the ratio heuristic.
///
/// Always returns a solution; `solution.feasible` is `false` when even the
/// latency-optimal assignment violates the constraint (the paper's early
/// pruning relies on this signal).
pub fn solve_heuristic(problem: &HapProblem) -> MappingSolution {
    let Some(mut assignment) = latency_optimal_assignment(problem) else {
        // Some layer has no feasible mapping at all.
        let fallback = Assignment::uniform(&problem.costs, 0);
        return MappingSolution::infeasible(fallback);
    };

    let mut schedule = simulate(problem, &assignment);
    let mut energy = problem.energy_of(&assignment);
    if schedule.makespan > problem.latency_constraint {
        return MappingSolution {
            assignment,
            latency_cycles: schedule.makespan,
            energy_nj: energy,
            feasible: false,
        };
    }

    // Greedy energy-reduction moves.
    loop {
        let mut best_move: Option<(usize, usize, usize, f64, f64, f64)> = None;
        for (n, network) in problem.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let current_sub = assignment.sub_for(n, l);
                let current_cost = &row.per_sub[current_sub];
                for (candidate_sub, candidate_cost) in row.per_sub.iter().enumerate() {
                    if candidate_sub == current_sub || !candidate_cost.is_feasible() {
                        continue;
                    }
                    let energy_saving = current_cost.energy_nj - candidate_cost.energy_nj;
                    if energy_saving <= 0.0 {
                        continue;
                    }
                    let mut trial = assignment.clone();
                    trial.set(n, l, candidate_sub);
                    let trial_schedule = simulate(problem, &trial);
                    if trial_schedule.makespan > problem.latency_constraint {
                        continue;
                    }
                    let latency_increase = (trial_schedule.makespan - schedule.makespan).max(1e-9);
                    let ratio = energy_saving / latency_increase;
                    let better = match best_move {
                        None => true,
                        Some((_, _, _, best_ratio, _, _)) => ratio > best_ratio,
                    };
                    if better {
                        best_move = Some((
                            n,
                            l,
                            candidate_sub,
                            ratio,
                            energy_saving,
                            trial_schedule.makespan,
                        ));
                    }
                }
            }
        }
        match best_move {
            Some((n, l, sub, _, saving, new_makespan)) => {
                assignment.set(n, l, sub);
                energy -= saving;
                schedule = simulate(problem, &assignment);
                debug_assert!((schedule.makespan - new_makespan).abs() < 1e-6);
            }
            None => break,
        }
    }

    let feasible = schedule.makespan <= problem.latency_constraint;
    MappingSolution {
        assignment,
        latency_cycles: schedule.makespan,
        energy_nj: energy,
        feasible,
    }
}

/// The latency-optimal starting assignment: each layer on its fastest
/// feasible sub-accelerator, with ties broken toward keeping the previous
/// layer's sub-accelerator (to avoid gratuitous switch penalties).
/// Returns `None` when some layer has no feasible mapping.
pub fn latency_optimal_assignment(problem: &HapProblem) -> Option<Assignment> {
    let mut per_network = Vec::with_capacity(problem.num_networks());
    for network in &problem.costs.networks {
        let mut layers = Vec::with_capacity(network.layers.len());
        let mut prev: Option<usize> = None;
        for row in &network.layers {
            let mut best: Option<(usize, f64)> = None;
            for (sub, cost) in row.per_sub.iter().enumerate() {
                if !cost.is_feasible() {
                    continue;
                }
                // Slight preference for staying on the same sub-accelerator.
                let bias = if Some(sub) == prev {
                    0.0
                } else {
                    problem.switch_penalty_cycles
                };
                let score = cost.latency_cycles + bias;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((sub, score));
                }
            }
            let (sub, _) = best?;
            layers.push(sub);
            prev = Some(sub);
        }
        per_network.push(layers);
    }
    Some(Assignment::new(per_network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;

    fn build_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 64, 1, 128, 1, 128, 1]),
            Backbone::UNetNuclei.materialize_values(&[2, 8, 16, 16, 32, 64]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    #[test]
    fn relaxed_constraint_is_feasible() {
        let solution = solve_heuristic(&build_problem(1e9));
        assert!(solution.feasible);
        assert!(solution.energy_nj.is_finite());
        assert!(solution.latency_cycles < 1e9);
    }

    #[test]
    fn impossible_constraint_is_reported_infeasible() {
        let solution = solve_heuristic(&build_problem(10.0));
        assert!(!solution.feasible);
        assert!(solution.latency_cycles > 10.0);
    }

    #[test]
    fn relaxing_the_constraint_never_increases_energy() {
        let tight = solve_heuristic(&build_problem(2.0e6));
        let loose = solve_heuristic(&build_problem(1.0e9));
        if tight.feasible {
            assert!(loose.energy_nj <= tight.energy_nj + 1e-6);
        }
    }

    #[test]
    fn solution_latency_respects_constraint_when_feasible() {
        for constraint in [1.5e6, 3e6, 1e7, 1e9] {
            let solution = solve_heuristic(&build_problem(constraint));
            if solution.feasible {
                assert!(solution.latency_cycles <= constraint);
            }
        }
    }

    #[test]
    fn latency_optimal_assignment_uses_both_subs_for_mixed_workload() {
        let problem = build_problem(1e9);
        let assignment = latency_optimal_assignment(&problem).unwrap();
        let mut used = [false, false];
        for layers in assignment.per_network() {
            for &s in layers {
                used[s] = true;
            }
        }
        assert!(
            used[0] && used[1],
            "mixed workload should exercise both dataflows"
        );
    }

    #[test]
    fn no_feasible_mapping_returns_infeasible() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::inactive(Dataflow::Nvdla),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        let solution = solve_heuristic(&problem);
        assert!(!solution.feasible);
    }

    #[test]
    fn energy_matches_recomputation_from_assignment() {
        let problem = build_problem(1e9);
        let solution = solve_heuristic(&problem);
        let recomputed = problem.energy_of(&solution.assignment);
        assert!((recomputed - solution.energy_nj).abs() / recomputed < 1e-9);
    }
}
