//! Ratio heuristic for the heterogeneous assignment problem.
//!
//! The paper notes that the optimal HAP solution could be obtained with an
//! ILP but that ILP is too slow inside a search loop, and instead applies
//! the efficient heuristic of Shao et al. (TPDS 2005).  The heuristic
//! implemented here follows the same idea:
//!
//! 1. start from the **latency-optimal** assignment (every layer on its
//!    fastest feasible sub-accelerator); if even this violates the latency
//!    constraint the instance is infeasible;
//! 2. repeatedly pick the best single-layer re-assignment that keeps the
//!    schedule within the latency constraint, and apply it.  "Best" means:
//!    a move that saves energy **without lengthening the schedule** always
//!    beats one that lengthens it (free moves are ranked by raw energy
//!    saving); among moves that do lengthen the schedule, the best
//!    *energy-saved per latency-added* ratio wins;
//! 3. stop when no energy-saving move remains.
//!
//! Candidate moves are **delta-evaluated**: [`solve_heuristic`] keeps one
//! [`Simulator`] alive, re-assigns the layer in place (set-and-undo, no
//! [`Assignment`] clone), and re-dispatches only the schedule suffix after
//! the moved layer from a recorded checkpoint.  The naive
//! clone-and-resimulate form is retained as
//! [`solve_heuristic_reference`]; the two are bit-identical (asserted by
//! the differential tests in `tests/incremental_consistency.rs`).

use crate::problem::{Assignment, HapProblem, MappingSolution};
use crate::schedule::{simulate, Simulator};

/// How a candidate move ranks against the incumbent best move of one
/// greedy step.  Shared by the incremental and the reference solver so the
/// two cannot drift.
#[derive(Debug, Clone, Copy)]
struct MoveScore {
    /// `true` when the move increases the makespan.
    lengthens: bool,
    /// Raw energy saving for non-lengthening moves; energy-saved per
    /// latency-added ratio for lengthening ones.
    key: f64,
}

impl MoveScore {
    fn rate(energy_saving: f64, trial_makespan: f64, makespan: f64) -> Self {
        if trial_makespan <= makespan {
            Self {
                lengthens: false,
                key: energy_saving,
            }
        } else {
            Self {
                lengthens: true,
                key: energy_saving / (trial_makespan - makespan),
            }
        }
    }

    /// Strict improvement: ties keep the earlier candidate (deterministic
    /// scan order).
    fn improves_on(&self, incumbent: &MoveScore) -> bool {
        match (self.lengthens, incumbent.lengthens) {
            (false, true) => true,
            (true, false) => false,
            _ => self.key > incumbent.key,
        }
    }

    /// Order-independent form of [`improves_on`](Self::improves_on): ties
    /// on (class, key) fall back to the scan index, so a scan in *any*
    /// evaluation order selects exactly the move a plain scan-order pass
    /// with strict `improves_on` would.
    fn beats(&self, index: usize, incumbent: &MoveScore, incumbent_index: usize) -> bool {
        match (self.lengthens, incumbent.lengthens) {
            (false, true) => true,
            (true, false) => false,
            _ => match self.key.total_cmp(&incumbent.key) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => index < incumbent_index,
            },
        }
    }
}

/// One candidate re-assignment of the scan, gathered before evaluation so
/// candidates can be visited in descending-saving order.
struct CandidateMove {
    /// Position in the canonical `(network, layer, sub)` scan — the
    /// tie-break order of the reference solver.
    index: usize,
    network: usize,
    layer: usize,
    from_sub: usize,
    to_sub: usize,
    saving: f64,
}

/// The best move found in one greedy step.
struct BestMove {
    index: usize,
    network: usize,
    layer: usize,
    sub: usize,
    saving: f64,
    makespan: f64,
    score: MoveScore,
}

/// Solve a HAP instance with the ratio heuristic.
///
/// Always returns a solution; `solution.feasible` is `false` when even the
/// latency-optimal assignment violates the constraint (the paper's early
/// pruning relies on this signal).
pub fn solve_heuristic(problem: &HapProblem) -> MappingSolution {
    let Some(mut assignment) = latency_optimal_assignment(problem) else {
        // Some layer has no feasible mapping at all.
        let fallback = Assignment::uniform(&problem.costs, 0);
        return MappingSolution::infeasible(fallback);
    };

    let mut sim = Simulator::new(problem);
    let mut makespan = sim.prepare(&assignment);
    let mut energy = problem.energy_of(&assignment);
    if makespan > problem.latency_constraint {
        return MappingSolution {
            assignment,
            latency_cycles: makespan,
            energy_nj: energy,
            feasible: false,
        };
    }

    // Greedy energy-reduction moves, delta-evaluated against the prepared
    // baseline.  The selected move is always the one the reference solver
    // selects — `MoveScore::beats` breaks every tie by scan index, so the
    // scan below is free to visit candidates in descending-saving order
    // and prune:
    //
    // * a makespan-non-increasing incumbent ends the scan outright: every
    //   later candidate saves no more energy (descending order), so it
    //   either ties-and-loses as a non-lengthening move or loses by class
    //   as a lengthening one;
    // * while the incumbent lengthens the schedule with ratio `R`, a
    //   candidate can only win by staying under
    //   `makespan + saving / R` — the replay is capped there (and at the
    //   latency constraint) and aborted as soon as it is exceeded;
    // * the accepted move's suffix replay doubles as the next baseline
    //   ([`Simulator::commit_trial`]), re-recording only the checkpoints
    //   the move invalidated.
    let mut candidates: Vec<CandidateMove> = Vec::new();
    loop {
        candidates.clear();
        let mut index = 0;
        for (n, network) in problem.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let current_sub = assignment.sub_for(n, l);
                let current_cost = &row.per_sub[current_sub];
                for (candidate_sub, candidate_cost) in row.per_sub.iter().enumerate() {
                    if candidate_sub == current_sub || !candidate_cost.is_feasible() {
                        continue;
                    }
                    let saving = current_cost.energy_nj - candidate_cost.energy_nj;
                    if saving > 0.0 {
                        candidates.push(CandidateMove {
                            index,
                            network: n,
                            layer: l,
                            from_sub: current_sub,
                            to_sub: candidate_sub,
                            saving,
                        });
                    }
                    index += 1;
                }
            }
        }
        candidates
            .sort_unstable_by(|a, b| b.saving.total_cmp(&a.saving).then(a.index.cmp(&b.index)));

        let mut best: Option<BestMove> = None;
        for candidate in &candidates {
            let cap = match &best {
                // A non-lengthening incumbent beats every remaining
                // candidate (they save at most as much): done.
                Some(b) if !b.score.lengthens => break,
                // Beating a lengthening incumbent takes either a
                // non-lengthening schedule or a better ratio; both live
                // below `makespan + saving / R`.  The boundary is widened
                // by a relative margin dwarfing the rounding of this cap
                // expression and of the reference's `saving / (trial -
                // makespan)` ratio (a few ulp each): candidates inside the
                // margin are fully evaluated and rejected by the *exact*
                // score comparison below, so the prune can never skip a
                // move the reference solver would select.
                Some(b) => ((makespan + candidate.saving / b.score.key) * (1.0 + 1e-12))
                    .min(problem.latency_constraint),
                None => problem.latency_constraint,
            };
            assignment.set(candidate.network, candidate.layer, candidate.to_sub);
            let trial_makespan =
                sim.trial_makespan(&assignment, candidate.network, candidate.layer, cap);
            assignment.set(candidate.network, candidate.layer, candidate.from_sub);
            if trial_makespan > cap {
                continue;
            }
            let score = MoveScore::rate(candidate.saving, trial_makespan, makespan);
            if best
                .as_ref()
                .is_none_or(|b| score.beats(candidate.index, &b.score, b.index))
            {
                best = Some(BestMove {
                    index: candidate.index,
                    network: candidate.network,
                    layer: candidate.layer,
                    sub: candidate.to_sub,
                    saving: candidate.saving,
                    makespan: trial_makespan,
                    score,
                });
            }
        }
        match best {
            Some(m) => {
                assignment.set(m.network, m.layer, m.sub);
                energy -= m.saving;
                makespan = sim.commit_trial(&assignment, m.network, m.layer);
                debug_assert!((makespan - m.makespan).abs() < 1e-6);
            }
            None => break,
        }
    }

    let feasible = makespan <= problem.latency_constraint;
    MappingSolution {
        assignment,
        latency_cycles: makespan,
        energy_nj: energy,
        feasible,
    }
}

/// The naive form of [`solve_heuristic`]: every trial move clones the
/// [`Assignment`] and re-simulates the whole workload from scratch.
///
/// Retained as the differential-testing oracle (and the benchmark
/// baseline) for the incremental solver — same scoring, same scan order,
/// same accumulation arithmetic, so its output is bit-identical to
/// [`solve_heuristic`] on every instance.
pub fn solve_heuristic_reference(problem: &HapProblem) -> MappingSolution {
    let Some(mut assignment) = latency_optimal_assignment(problem) else {
        let fallback = Assignment::uniform(&problem.costs, 0);
        return MappingSolution::infeasible(fallback);
    };

    let mut schedule = simulate(problem, &assignment);
    let mut energy = problem.energy_of(&assignment);
    if schedule.makespan > problem.latency_constraint {
        return MappingSolution {
            assignment,
            latency_cycles: schedule.makespan,
            energy_nj: energy,
            feasible: false,
        };
    }

    loop {
        let mut best: Option<BestMove> = None;
        let mut index = 0;
        for (n, network) in problem.costs.networks.iter().enumerate() {
            for (l, row) in network.layers.iter().enumerate() {
                let current_sub = assignment.sub_for(n, l);
                let current_cost = &row.per_sub[current_sub];
                for (candidate_sub, candidate_cost) in row.per_sub.iter().enumerate() {
                    if candidate_sub == current_sub || !candidate_cost.is_feasible() {
                        continue;
                    }
                    index += 1;
                    let energy_saving = current_cost.energy_nj - candidate_cost.energy_nj;
                    if energy_saving <= 0.0 {
                        continue;
                    }
                    let mut trial = assignment.clone();
                    trial.set(n, l, candidate_sub);
                    let trial_makespan = simulate(problem, &trial).makespan;
                    if trial_makespan > problem.latency_constraint {
                        continue;
                    }
                    let score = MoveScore::rate(energy_saving, trial_makespan, schedule.makespan);
                    // Scan order plus strict improvement == the
                    // index-tie-broken selection of `solve_heuristic`.
                    if best.as_ref().is_none_or(|b| score.improves_on(&b.score)) {
                        best = Some(BestMove {
                            index: index - 1,
                            network: n,
                            layer: l,
                            sub: candidate_sub,
                            saving: energy_saving,
                            makespan: trial_makespan,
                            score,
                        });
                    }
                }
            }
        }
        match best {
            Some(m) => {
                assignment.set(m.network, m.layer, m.sub);
                energy -= m.saving;
                schedule = simulate(problem, &assignment);
                debug_assert!((schedule.makespan - m.makespan).abs() < 1e-6);
            }
            None => break,
        }
    }

    let feasible = schedule.makespan <= problem.latency_constraint;
    MappingSolution {
        assignment,
        latency_cycles: schedule.makespan,
        energy_nj: energy,
        feasible,
    }
}

/// The latency-optimal starting assignment: each layer on its fastest
/// feasible sub-accelerator, with ties broken toward keeping the previous
/// layer's sub-accelerator (to avoid gratuitous switch penalties).
/// Returns `None` when some layer has no feasible mapping.
pub fn latency_optimal_assignment(problem: &HapProblem) -> Option<Assignment> {
    let mut per_network = Vec::with_capacity(problem.num_networks());
    for network in &problem.costs.networks {
        let mut layers = Vec::with_capacity(network.layers.len());
        let mut prev: Option<usize> = None;
        for row in &network.layers {
            let mut best: Option<(usize, f64)> = None;
            for (sub, cost) in row.per_sub.iter().enumerate() {
                if !cost.is_feasible() {
                    continue;
                }
                // Slight preference for staying on the same sub-accelerator.
                let bias = if Some(sub) == prev {
                    0.0
                } else {
                    problem.switch_penalty_cycles
                };
                let score = cost.latency_cycles + bias;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((sub, score));
                }
            }
            let (sub, _) = best?;
            layers.push(sub);
            prev = Some(sub);
        }
        per_network.push(layers);
    }
    Some(Assignment::new(per_network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, LayerCost, WorkloadCosts};
    use nasaic_cost::{LayerCostRow, NetworkCosts};
    use nasaic_nn::backbone::Backbone;

    fn build_problem(latency_constraint: f64) -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[8, 64, 1, 128, 1, 128, 1]),
            Backbone::UNetNuclei.materialize_values(&[2, 8, 16, 16, 32, 64]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        HapProblem::new(costs, latency_constraint)
    }

    /// Hand-built one-network instance where the old
    /// `(trial - makespan).max(1e-9)` ratio scoring picks the worse move.
    ///
    /// Both candidate moves keep the makespan unchanged (the moved layers
    /// are off the critical path).  Move A saves 1 nJ, move B saves
    /// 1000 nJ.  The old code divided both savings by the same clamped
    /// `1e-9` latency increase and then compared ratios — so whichever move
    /// was scanned first with a positive saving could only be displaced by
    /// a *ratio* win, and a tiny saving on a zero-latency-delta move
    /// produced a ~1e9× ratio that beat honestly-rated lengthening moves.
    /// With per-class scoring, B (the larger raw saving) must win the first
    /// greedy step.
    fn ratio_bug_problem() -> HapProblem {
        let row = |name: &str, fast: LayerCost, slow: LayerCost| LayerCostRow {
            layer_name: name.to_string(),
            macs: 1,
            per_sub: vec![fast, slow],
        };
        let cost = |latency_cycles: f64, energy_nj: f64| LayerCost {
            latency_cycles,
            energy_nj,
        };
        // Layer 0 dominates the makespan and never moves (its alternative
        // is slower *and* costlier).  Layers 1 and 2 are tiny and can move
        // to sub 1 without touching the makespan, saving 1 nJ and 1000 nJ
        // respectively.
        let costs = WorkloadCosts {
            networks: vec![NetworkCosts {
                name: "synthetic".to_string(),
                layers: vec![
                    row("anchor", cost(1000.0, 10.0), cost(5000.0, 20.0)),
                    row("small-saving", cost(10.0, 11.0), cost(10.0, 10.0)),
                    row("large-saving", cost(10.0, 2000.0), cost(10.0, 1000.0)),
                ],
            }],
            num_subs: 2,
        };
        // No switch penalty so the moves truly are makespan-neutral.
        HapProblem::new(costs, 1.0e5).with_switch_penalty(0.0)
    }

    #[test]
    fn makespan_neutral_moves_are_ranked_by_raw_energy_saving() {
        let problem = ratio_bug_problem();
        // Replay the first greedy step by hand: the solver must take the
        // 1000 nJ saving ("large-saving" → sub 1) before the 1 nJ one.
        let start = latency_optimal_assignment(&problem).unwrap();
        assert_eq!(start.per_network()[0], vec![0, 0, 0]);
        let solution = solve_heuristic(&problem);
        // Both moves are eventually taken (both save energy at no latency
        // cost), so pin the ordering through the scoring directly.
        let free_small = MoveScore::rate(1.0, 1000.0, 1000.0);
        let free_large = MoveScore::rate(1000.0, 1000.0, 1000.0);
        assert!(free_large.improves_on(&free_small));
        assert!(!free_small.improves_on(&free_large));
        assert!(solution.feasible);
        // Final assignment: both movable layers end on the cheap sub, the
        // anchor stays put.
        assert_eq!(solution.assignment.per_network()[0], vec![0, 1, 1]);
        assert!((solution.energy_nj - (10.0 + 10.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn old_scoring_would_pick_the_worse_move_first() {
        // Regression pin for the `(trial - makespan).max(1e-9)` bug: under
        // the old clamped-ratio scoring, the 1 nJ move and the 1000 nJ move
        // both rate `saving / 1e-9`, and a genuinely useful lengthening
        // move rated `saving / latency_increase` could never compete.
        let old_score =
            |saving: f64, trial: f64, makespan: f64| saving / (trial - makespan).max(1e-9);
        let tiny_free = old_score(1.0, 1000.0, 1000.0); // 1e9
        let big_lengthening = old_score(1.0e6, 1001.0, 1000.0); // 1e6
        assert!(
            tiny_free > big_lengthening,
            "old scoring inflated makespan-neutral moves: {tiny_free} vs {big_lengthening}"
        );
        let new_tiny = MoveScore::rate(1.0, 1000.0, 1000.0);
        let new_big = MoveScore::rate(1.0e6, 1001.0, 1000.0);
        // New scoring still prefers the free move *class*, but ranks free
        // moves among themselves by saving — so a 1000 nJ free move beats
        // the 1 nJ free move, which the old flat 1e9 ratios could not
        // express (first-scanned won the tie).
        assert!(new_tiny.improves_on(&new_big));
        let new_large_free = MoveScore::rate(1000.0, 1000.0, 1000.0);
        assert!(new_large_free.improves_on(&new_tiny));
    }

    #[test]
    fn incremental_and_reference_agree_on_paper_instances() {
        for constraint in [1.5e6, 2.0e6, 3.0e6, 1.0e7, 1.0e9] {
            let problem = build_problem(constraint);
            assert_eq!(
                solve_heuristic(&problem),
                solve_heuristic_reference(&problem),
                "divergence at constraint {constraint}"
            );
        }
    }

    #[test]
    fn relaxed_constraint_is_feasible() {
        let solution = solve_heuristic(&build_problem(1e9));
        assert!(solution.feasible);
        assert!(solution.energy_nj.is_finite());
        assert!(solution.latency_cycles < 1e9);
    }

    #[test]
    fn impossible_constraint_is_reported_infeasible() {
        let solution = solve_heuristic(&build_problem(10.0));
        assert!(!solution.feasible);
        assert!(solution.latency_cycles > 10.0);
    }

    #[test]
    fn relaxing_the_constraint_never_increases_energy() {
        let tight = solve_heuristic(&build_problem(2.0e6));
        let loose = solve_heuristic(&build_problem(1.0e9));
        if tight.feasible {
            assert!(loose.energy_nj <= tight.energy_nj + 1e-6);
        }
    }

    #[test]
    fn solution_latency_respects_constraint_when_feasible() {
        for constraint in [1.5e6, 3e6, 1e7, 1e9] {
            let solution = solve_heuristic(&build_problem(constraint));
            if solution.feasible {
                assert!(solution.latency_cycles <= constraint);
            }
        }
    }

    #[test]
    fn latency_optimal_assignment_uses_both_subs_for_mixed_workload() {
        let problem = build_problem(1e9);
        let assignment = latency_optimal_assignment(&problem).unwrap();
        let mut used = [false, false];
        for layers in assignment.per_network() {
            for &s in layers {
                used[s] = true;
            }
        }
        assert!(
            used[0] && used[1],
            "mixed workload should exercise both dataflows"
        );
    }

    #[test]
    fn no_feasible_mapping_returns_infeasible() {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::inactive(Dataflow::Nvdla),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &archs, &acc);
        let problem = HapProblem::new(costs, 1e9);
        let solution = solve_heuristic(&problem);
        assert!(!solution.feasible);
    }

    #[test]
    fn energy_matches_recomputation_from_assignment() {
        let problem = build_problem(1e9);
        let solution = solve_heuristic(&problem);
        let recomputed = problem.energy_of(&solution.assignment);
        assert!((recomputed - solution.energy_nj).abs() / recomputed < 1e-9);
    }
}
