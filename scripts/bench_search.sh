#!/usr/bin/env bash
# Regenerate the whole-search perf snapshot (end-to-end NASAIC on W1).
#
#   scripts/bench_search.sh                      # full run, appends to BENCH_search.json
#   scripts/bench_search.sh --quick --label ci   # CI mode: short budget, still gates
#                                                # on the dispatch-consistency suite
#
# All arguments are forwarded to the `search_baseline` binary
# (see `crates/bench/src/bin/search_baseline.rs` for the full flag list,
# including `--validate-trace <file>` used by the CI trace smoke).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin search_baseline -- "$@"
