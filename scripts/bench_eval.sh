#!/usr/bin/env bash
# Regenerate the evaluator hot-path perf snapshot (identity gates + the
# naive-vs-optimised per-candidate timing on a replayed W1 episode stream).
#
#   scripts/bench_eval.sh                      # full run, appends to BENCH_eval.json
#   scripts/bench_eval.sh --quick --check      # CI mode: identity gates only,
#                                              # nothing written
#
# All arguments are forwarded to the `eval_baseline` binary
# (see `crates/bench/src/bin/eval_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin eval_baseline -- "$@"
