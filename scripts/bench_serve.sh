#!/usr/bin/env bash
# Regenerate the `nasaic serve` warm-engine perf snapshot.
#
#   scripts/bench_serve.sh                  # full run, appends to BENCH_serve.json
#   scripts/bench_serve.sh --quick --check  # CI mode: identity gate only
#                                           # (socket round trip and warm
#                                           # resubmission must be
#                                           # bit-identical), no timing write
#
# All arguments are forwarded to the `serve_baseline` binary
# (see `crates/bench/src/bin/serve_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin serve_baseline -- "$@"
