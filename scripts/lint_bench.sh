#!/usr/bin/env bash
# Validate every BENCH_*.json trajectory file against the shared schema
# (top-level schema/bench/entries; per-entry label, mode, YYYY-MM-DD
# date, and a gate field).  See `crates/bench/src/bin/bench_lint.rs`.
#
#   scripts/lint_bench.sh           # lint the repo root
#   scripts/lint_bench.sh <dir>     # lint another directory
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin bench_lint -- "${1:-.}"
