#!/usr/bin/env bash
# Regenerate the checkpoint/resume + sharded-execution perf snapshot.
#
#   scripts/bench_resume.sh                  # full run, appends to BENCH_resume.json
#   scripts/bench_resume.sh --quick --check  # CI mode: identity gates only
#                                            # (resume and merge must be
#                                            # bit-identical), no timing write
#
# All arguments are forwarded to the `resume_baseline` binary
# (see `crates/bench/src/bin/resume_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin resume_baseline -- "$@"
