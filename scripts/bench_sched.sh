#!/usr/bin/env bash
# Regenerate the scheduling perf snapshot.
#
#   scripts/bench_sched.sh                      # full run, appends to BENCH_sched.json
#   scripts/bench_sched.sh --quick --label ci   # CI mode: short budget, still gates
#                                               # on the solver consistency suite
#
# All arguments are forwarded to the `sched_baseline` binary
# (see `crates/bench/src/bin/sched_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin sched_baseline -- "$@"
