#!/usr/bin/env bash
# Regenerate the telemetry overhead snapshot.
#
#   scripts/bench_telemetry.sh                  # full run, appends to BENCH_telemetry.json
#   scripts/bench_telemetry.sh --quick --check  # CI mode: identity gate only
#                                               # (seeded outcomes must be
#                                               # bit-identical with telemetry
#                                               # on and off), no timing write
#
# All arguments are forwarded to the `telemetry_baseline` binary
# (see `crates/bench/src/bin/telemetry_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin telemetry_baseline -- "$@"
