#!/usr/bin/env bash
# Regenerate the scale-ladder snapshot: seeded generated instances from 10
# to 1000 layers solved through the tiered scheduler (exact / beam /
# heuristic), with per-rung consistency gates.
#
#   scripts/bench_scale.sh                     # full ladder, appends to BENCH_scale.json
#   scripts/bench_scale.sh --quick --check     # CI mode: 10- and 39-layer rungs,
#                                              # gates only, nothing written
#
# All arguments are forwarded to the `scale_baseline` binary
# (see `crates/bench/src/bin/scale_baseline.rs` for the full flag list).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p nasaic-bench --bin scale_baseline -- "$@"
