//! ChaCha12 block function with rand_chacha's state layout.

/// "expand 32-byte k".
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Raw ChaCha12 core: 256-bit key, 64-bit block counter, 64-bit stream id
/// (always zero here, matching `ChaCha12Rng::from_seed`).
#[derive(Debug, Clone)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Core {
    /// Rebuild a core from exported `(key, counter)` state
    /// (see [`ChaCha12Core::state`]).
    pub fn from_state(key: [u32; 8], counter: u64) -> Self {
        Self { key, counter }
    }

    /// The core's full state: the 256-bit key as little-endian words and
    /// the 64-bit block counter.  `from_state(key, counter)` reproduces the
    /// keystream from this point exactly.
    pub fn state(&self) -> ([u32; 8], u64) {
        (self.key, self.counter)
    }

    /// Build the core from a 32-byte seed (key words little-endian).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0 }
    }

    /// Generate the next four 64-byte blocks (rand_chacha's `BlockRng`
    /// buffer granularity), advancing the counter by four.
    pub fn generate(&mut self, out: &mut [u32; 64]) {
        for block in 0..4 {
            let counter = self.counter.wrapping_add(block as u64);
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CONSTANTS);
            state[4..12].copy_from_slice(&self.key);
            state[12] = counter as u32;
            state[13] = (counter >> 32) as u32;
            // state[14..16]: stream id, zero.
            let initial = state;
            for _ in 0..6 {
                // One double round = column round + diagonal round.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (slot, (word, init)) in out[block * 16..block * 16 + 16]
                .iter_mut()
                .zip(state.iter().zip(initial))
            {
                *slot = word.wrapping_add(init);
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }
}
