//! Uniform range sampling, mirroring rand 0.8's `UniformInt` /
//! `UniformFloat` `sample_single` algorithms (same randomness consumption,
//! same values).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply rejection sampling for 64-bit-wide integer types
/// (`UniformInt::sample_single` for `u64`-sized `$u_large`).
#[inline]
fn sample_int_64<R: RngCore + ?Sized>(low: u64, range: u64, rng: &mut R) -> u64 {
    if range == 0 {
        // Full range: every output word is valid.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = u128::from(v) * u128::from(range);
        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

macro_rules! int_range_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = (self.end as u64).wrapping_sub(self.start as u64);
                sample_int_64(self.start as u64, range, rng) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let range = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                sample_int_64(start as u64, range, rng) as $ty
            }
        }
    )*};
}

// The workspace samples usize/u64/u32/i64/i32 ranges; all are routed through
// the 64-bit path.  (rand uses the native width for u32 — the only u32
// ranges in this tree are inside the local proptest stand-in, which defines
// its own consumption, so stream compatibility is unaffected.)
int_range_impls!(usize, u64, u32, i64, i32);

/// `UniformFloat<f64>`: 52 random mantissa bits mapped to `[1, 2)`.
#[inline]
fn value0_1<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
    value1_2 - 1.0
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let mut scale = self.end - self.start;
        loop {
            let res = value0_1(rng) * scale + self.start;
            if res < self.end {
                return res;
            }
            // Rounding produced `end` (probability ~2^-52): shrink the
            // scale and resample, as rand does.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        // Stretch so the maximum mantissa value lands exactly on `end`.
        let max_value0_1 = 1.0 - f64::EPSILON;
        let scale = (end - start) / max_value0_1;
        let res = value0_1(rng) * scale + start;
        if res > end {
            end
        } else {
            res
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let mut scale = self.end - self.start;
        loop {
            // 23 random mantissa bits mapped to [1, 2).
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
            // Rounding produced `end` (~2^-23 probability): shrink the
            // scale and resample, as rand does.
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}
