//! Standard generators.

use crate::chacha::ChaCha12Core;
use crate::{RngCore, SeedableRng};

/// The standard RNG of rand 0.8: ChaCha12, buffered through a
/// `BlockRng`-equivalent 64-word buffer so output order (including the
/// word-straddling `next_u64` case) matches the real implementation.
#[derive(Debug, Clone)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; 64],
    index: usize,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            core: ChaCha12Core::from_seed(seed),
            results: [0; 64],
            // Empty buffer: first use generates.
            index: 64,
        }
    }
}

/// Exported mid-stream position of a [`StdRng`]: the ChaCha key, the block
/// counter *after* the buffered generate, and the word index into the
/// 64-word buffer.  The buffer contents themselves are not stored — they
/// are regenerated bit-exactly on restore (ChaCha output is a pure
/// function of `(key, counter)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StdRngState {
    /// ChaCha12 key words (little-endian).
    pub key: [u32; 8],
    /// Block counter after the last buffer refill.
    pub counter: u64,
    /// Next unread word in the 64-word buffer (`64` = buffer exhausted
    /// or never filled).
    pub index: usize,
}

impl StdRng {
    /// Export the generator's exact stream position.  Restoring with
    /// [`StdRng::from_state`] continues the output stream bit-for-bit.
    pub fn state(&self) -> StdRngState {
        let (key, counter) = self.core.state();
        StdRngState {
            key,
            counter,
            index: self.index,
        }
    }

    /// Rebuild a generator at an exported stream position.
    ///
    /// When the exported index lies inside the buffer, the buffer is
    /// regenerated from the counter the refill used (`counter - 4`), which
    /// restores both the buffered words and the post-refill counter.
    ///
    /// # Panics
    ///
    /// Panics if `state.index > 64` (no generator ever exports that).
    pub fn from_state(state: StdRngState) -> Self {
        assert!(state.index <= 64, "invalid StdRng index {}", state.index);
        if state.index >= 64 {
            // Buffer exhausted (or fresh): the next draw regenerates.
            Self {
                core: ChaCha12Core::from_state(state.key, state.counter),
                results: [0; 64],
                index: 64,
            }
        } else {
            // Mid-buffer: replay the refill that produced the buffer.
            let mut core = ChaCha12Core::from_state(state.key, state.counter.wrapping_sub(4));
            let mut results = [0; 64];
            core.generate(&mut results);
            Self {
                core,
                results,
                index: state.index,
            }
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 64 {
            self.core.generate(&mut self.results);
            self.index = 0;
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64 semantics from rand_core.
        let index = self.index;
        if index < 63 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= 64 {
            self.core.generate(&mut self.results);
            self.index = 2;
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            let low = u64::from(self.results[63]);
            self.core.generate(&mut self.results);
            self.index = 1;
            (u64::from(self.results[0]) << 32) | low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn chacha12_known_answer_zero_key() {
        // draft-strombergson-chacha-test-vectors-01, ChaCha12, 256-bit
        // all-zero key, zero IV: keystream block 0 begins
        // 9b f4 9a 6a 07 55 f9 53 ... — pinned here so any edit to the
        // block function, counter layout or BlockRng word pairing breaks
        // loudly instead of silently voiding rand-0.8 stream compatibility.
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u64(), 0x53f9_5507_6a9a_f49b);
    }

    #[test]
    fn seed_from_u64_stream_is_pinned() {
        // Regression pins for the full seed_from_u64 pipeline (PCG32 seed
        // expansion -> ChaCha12 -> BlockRng pairing).  Every calibrated
        // threshold in the workspace test suite depends on these streams.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                0xbb2a_3fb2_cd2c_6f7f,
                0xc601_7c94_8e27_697b,
                0x069d_c102_cf31_0a16
            ]
        );
        let mut rng = StdRng::seed_from_u64(2020);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                0x6aa8_d140_ddbb_4b55,
                0x44d8_9dce_5ef5_c4b7,
                0xd256_4456_a9b7_d22f
            ]
        );
    }

    #[test]
    fn state_round_trip_continues_the_stream_from_any_position() {
        // Export/restore at every buffer position (including the fresh
        // index-64 state, mid-buffer, and the word-straddling next_u64
        // cases around index 63) must continue the stream bit-for-bit.
        for drained in 0..130 {
            let mut rng = StdRng::seed_from_u64(2020);
            for _ in 0..drained {
                rng.next_u32();
            }
            let mut restored = StdRng::from_state(rng.state());
            for step in 0..200 {
                assert_eq!(
                    rng.next_u64(),
                    restored.next_u64(),
                    "diverged at step {step} after draining {drained} words"
                );
            }
        }
    }

    #[test]
    fn fresh_state_round_trip_matches_from_seed() {
        let rng = StdRng::seed_from_u64(7);
        let mut restored = StdRng::from_state(rng.state());
        let mut fresh = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(fresh.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..17usize);
            assert!(v < 17);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn uniform_usize_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
