//! Offline stand-in for the `rand` crate (0.8 API surface used by NASAIC).
//!
//! The build environment has no registry access, so this crate reimplements
//! the exact subset the workspace consumes — [`Rng::gen_range`] on integer
//! and float ranges, [`Rng::gen_bool`], and [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`] — with **bit-compatible output streams**:
//!
//! * `StdRng` is ChaCha12 with rand_chacha's state layout (64-bit counter,
//!   zero stream), buffered four blocks at a time like `BlockRng`;
//! * `seed_from_u64` expands the seed with the PCG32 sequence exactly as
//!   `rand_core` 0.6 does;
//! * integer `gen_range` uses the widening-multiply rejection method of
//!   rand 0.8's `UniformInt::sample_single`;
//! * float `gen_range` uses the 52-bit `[1, 2)` mantissa trick of
//!   `UniformFloat`;
//! * `gen_bool` uses the fixed-point `u64` comparison of `Bernoulli`.
//!
//! A seeded run therefore reproduces the trajectories the test-suite
//! thresholds were calibrated against, and swapping the real `rand` back in
//! changes nothing but the `Cargo.toml` entry.

pub mod rngs;

mod chacha;
mod uniform;

pub use uniform::SampleRange;

/// Core RNG interface: raw 32- and 64-bit output words.
pub trait RngCore {
    /// Next 32 bits of output.
    fn next_u32(&mut self) -> u32;
    /// Next 64 bits of output.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`] like in rand 0.8.
pub trait Rng: RngCore {
    /// Sample a value uniformly from a `low..high` or `low..=high` range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p == 1.0 {
            // Bernoulli's ALWAYS_TRUE marker: no randomness consumed.
            return true;
        }
        // Bernoulli::new: p_int = (p * 2^64) as u64.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed bytes consumed by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the PCG32 sequence rand_core
    /// 0.6 uses for its default `seed_from_u64`, then build the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core's default impl: one PCG32 output (XSH-RR) per 4-byte
        // chunk of the seed, state advanced before each output.
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
