//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the NASAIC bench targets use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box` — with a
//! simple wall-clock measurement loop (warm-up, then timed batches until a
//! time budget is spent) instead of criterion's statistical machinery.
//! Results are printed as `<group>/<name> ... time: <mean> ns/iter`.
//!
//! Filters passed on the command line (`cargo bench -- <substring>`) select
//! benchmarks by substring match, like the real harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(80);

/// Identifier of a parameterised benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display value.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        Self {
            full: format!("{function}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the measured closure.
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measure a closure: warm up, then run timed batches until the
    /// measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also used to size the timed batches.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let batch = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        while total < MEASUREMENT_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iterations as f64;
        self.iterations = iterations;
    }

    /// Measure with per-iteration setup (`iter_batched` with small batches).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    /// Measure with a caller-controlled loop.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let probe = routine(1);
        let per_iter = probe.as_secs_f64().max(1e-9);
        let iterations = ((MEASUREMENT_BUDGET.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 20);
        let total = routine(iterations);
        self.mean_ns = total.as_secs_f64() * 1e9 / iterations as f64;
        self.iterations = iterations;
    }
}

/// Batch sizing hint (accepted for API compatibility, unused).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small input batches.
    #[default]
    SmallInput,
    /// Large input batches.
    LargeInput,
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, filter: Option<&str>, mut f: F) {
    if let Some(pattern) = filter {
        if !name.contains(pattern) {
            return;
        }
    }
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    println!(
        "{name:<48} time: {:>12}/iter  ({} iterations)",
        format_time(bencher.mean_ns),
        bencher.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is time-budgeted, not
    /// sample-count-budgeted.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.criterion.filter.as_deref(), f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, N: std::fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        name: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.criterion.filter.as_deref(), |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Read the benchmark-name filter from the command line, skipping the
    /// flags cargo-bench forwards (e.g. `--bench`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Benchmark a closure under a bare name.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.to_string(), self.filter.as_deref(), f);
        self
    }
}

/// Bundle benchmark functions into a single runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
