//! Offline stand-in for the `serde` crate.
//!
//! The NASAIC workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker (there is no `T: Serialize` bound
//! anywhere); actual config (de)serialization — the scenario TOML/JSON
//! layer — lives in `nasaic_core::scenario::value`, which hand-rolls the
//! small format subset it needs.  The build environment has no network
//! access, so this crate provides the two marker traits and re-exports
//! no-op derive macros with the same names.  Swapping in the real `serde`
//! later is a one-line `Cargo.toml` change (plus porting
//! `scenario::value` onto `toml`/`serde_json`).

/// Marker trait mirroring `serde::Serialize`.
///
/// The no-op derive implements it for the annotated type; the trait has no
/// required items so derived impls stay empty.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The lifetime parameter of the real trait is dropped — no call site in
/// this workspace names it explicitly.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(impl Serialize for $ty {}
          impl Deserialize for $ty {})*
    };
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
