//! No-op `Serialize` / `Deserialize` derives for the offline serde stand-in.
//!
//! The real serde derives generate (de)serialization code; nothing in this
//! workspace serializes yet, so these derives only implement the marker
//! traits for the annotated type.  Implemented without `syn`/`quote` (the
//! build environment has no registry access): the target's name is the
//! identifier following the `struct`/`enum`/`union` keyword.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name in a derive input: the identifier right after the
/// item keyword, skipping outer attributes and doc comments.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if matches!(text.as_str(), "struct" | "enum" | "union") {
                saw_keyword = true;
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let name = type_name(input).expect("derive target has a type name");
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
