//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the NASAIC test-suite uses — the [`proptest!`]
//! macro, [`strategy::Strategy`] over numeric ranges / [`strategy::Just`] /
//! [`prop_oneof!`] unions / [`collection::vec`], `any::<T>()`, and the
//! `prop_assert*` macros — as a deterministic random-case harness: each
//! test runs `ProptestConfig::cases` cases with inputs drawn from a ChaCha
//! RNG seeded from the test name, so failures are reproducible run to run.
//!
//! Shrinking is not implemented: a failing case panics with the regular
//! assertion message (the generated inputs are deterministic, so the case
//! can be replayed under a debugger by test name alone).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface used by test files (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run property-test functions over generated inputs.
///
/// Supports the same item grammar as the real macro for the forms used in
/// this workspace: an optional `#![proptest_config(...)]` header followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __seed = $crate::test_runner::seed_for(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __strategy = $strategy;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__strategy, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Property assertion (panics like `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
