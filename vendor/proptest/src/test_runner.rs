//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Configuration of a [`crate::proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic seed derived from a test name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// RNG for one case of one test.
pub fn case_rng(seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
