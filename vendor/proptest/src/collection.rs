//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    length: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let length = rng.gen_range(self.length.clone());
        (0..length).map(|_| self.element.generate(rng)).collect()
    }
}

/// Build a strategy for `Vec`s of `element` values (`collection::vec`).
pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, length }
}
