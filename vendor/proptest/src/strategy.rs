//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(usize, u32, u64, i32, i64, f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced values spanning many magnitudes.
        let magnitude = rng.gen_range(-300.0..300.0);
        let mantissa = rng.gen_range(1.0..10.0);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * mantissa * 10f64.powf(magnitude / 10.0)
    }
}

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A boxed generator closure, the erased form of a strategy arm.
pub type BoxedGenerator<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed sub-strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<BoxedGenerator<T>>,
}

impl<T> Union<T> {
    /// Build a union from generator closures.
    ///
    /// # Panics
    ///
    /// Panics when `variants` is empty.
    pub fn new(variants: Vec<BoxedGenerator<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.variants.len());
        (self.variants[index])(rng)
    }
}
